//! Vectorized columnar execution over packed keys: morsel-driven scans
//! feeding the POD kernels of [`dc_aggregate::vectorized`].
//!
//! This is the fast lane beside [`super::encoded`]: the same packed-`u64`
//! group keys and the same cascade schedule, but the accumulators are
//! 24-byte [`KernelCell`]s in one flat `Vec` and the inner loop is a
//! monomorphized kernel over a primitive column slice instead of a virtual
//! `Accumulator::iter` per (row, aggregate). It engages only when
//! [`plan`] succeeds — every aggregate exposes a [`Kernel`] *and* every
//! measure column extracts as `i64`/`f64` + validity bitmap — so holistic
//! and user-defined aggregates (and exotic column contents) transparently
//! keep the Init/Iter/Final row path, with identical results.
//!
//! Scans are *morsel-driven* (Leis et al.'s term): workers pull fixed-size
//! row ranges from a shared atomic cursor rather than receiving pre-split
//! partitions, so a worker stuck on a skewed, collision-heavy range does
//! not leave the others idle. The serial scan walks the same morsels, and
//! every morsel boundary polls [`ExecContext::checkpoint`], bounding the
//! latency of cancellation and deadline trips.
//!
//! [`ExecStats`] accounting matches the row path exactly where the work is
//! equivalent (`rows_scanned` per row, `iter_calls` per (row, aggregate),
//! `merge_calls` per (parent cell, aggregate) in the cascade and per
//! collision in the parallel coalesce); rehydrating a cell into a boxed
//! accumulator at materialization time is *not* a merge — it is the same
//! bookkeeping the arena's `into_group_map` does for free.

use crate::encode::{EncodedInput, KeyEncoder};
use crate::error::CubeResult;
use crate::exec::{self, ExecContext};
use crate::groupby::ExecStats;
#[cfg(test)]
use crate::groupby::{GroupMap, SetMaps};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::BoundAgg;
use dc_aggregate::{FusedOp, Kernel, KernelCell, Validity};
use dc_relation::{Bitmap, Column, ColumnData, FxHashMap, RleIndex, Row};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use super::encoded::PARALLEL_CASCADE_MIN_CELLS;
use super::from_core::ParentChoice;
use super::PathOpts;

/// Rows per morsel: two checkpoint intervals, so morsel-grained polling
/// is at worst 2x coarser than the row paths' `tick`, while the slot
/// buffer (4 bytes/row) stays comfortably in L1. A multiple of 64, so a
/// morsel's validity bits start on a word boundary and kernels can take
/// whole-word [`Validity::Words`] slices.
pub(crate) const MORSEL_ROWS: usize = 2 * exec::CHECKPOINT_INTERVAL;

/// Widest packed key a dense slot table may cover: `2^16` entries is a
/// 256 KiB `u32` table — safely cache-resident next to the cells it
/// indexes, and far cheaper than a hash probe per row.
const DENSE_SLOT_BITS: u32 = 16;

/// Auto-RLE engages only past this row count (below it the per-row scan
/// is already cheap and tiny inputs keep bit-exact parity with the row
/// path in tests).
const RLE_AUTO_MIN_ROWS: usize = 4096;

/// Auto-RLE requires the sampled mean key-run length to reach this many
/// rows — below it, per-run dispatch overhead eats the fold savings.
const RLE_AUTO_MIN_RUN: usize = 4;

/// Auto-radix engages only past this row count; below it one hash map
/// (or one dense table) wins on setup cost alone.
const RADIX_AUTO_MIN_ROWS: usize = 32_768;

/// Cells per parallel-materialize task: big enough that a chunk's decode
/// work dwarfs the cursor fetch, small enough that the final chunks of a
/// skewed set still spread across workers.
const EMIT_CHUNK_CELLS: usize = 4096;

/// One aggregate's vectorized input. Lanes over the same measure column
/// share one extracted vector (`SUM(units)` and `AVG(units)` in one
/// select list extract `units` once, not twice).
pub(crate) enum LaneInput {
    /// No column to read — COUNT(*) and COUNT over the unit input count
    /// rows, not values.
    Star,
    /// An `i64` measure column with its validity bitmap.
    Ints(Arc<(Vec<i64>, Bitmap)>),
    /// An `f64` measure column with its validity bitmap.
    Floats(Arc<(Vec<f64>, Bitmap)>),
}

/// One aggregate compiled to a kernel over a typed column.
pub(crate) struct Lane {
    kernel: Kernel,
    input: LaneInput,
    /// Whether the measure column has no NULLs — computed once at plan
    /// time so every morsel takes the branch-free [`Validity::All`] path
    /// instead of re-deriving it.
    all_valid: bool,
    /// Run-length index over the measure column, attached only when the
    /// RLE scan engages ([`KernelPlan::attach_rle`]) and the column
    /// actually compresses. Enables the `n × value` constant-run fold.
    rle: Option<Arc<RleIndex>>,
}

impl Lane {
    fn float_input(&self) -> bool {
        matches!(self.input, LaneInput::Floats(..))
    }
}

/// The compiled plan: one [`Lane`] per aggregate, in aggregate order.
pub(crate) struct KernelPlan {
    lanes: Vec<Lane>,
}

/// A qualified fused row-major scan: every lane is fully valid and reads
/// either nothing (counting lanes) or one shared `i64` column, so one
/// pass per morsel updates all of a row's adjacent lane cells while their
/// cache lines are hot instead of re-touching them per lane-major pass.
pub(crate) struct FusedScan {
    col: Arc<(Vec<i64>, Bitmap)>,
    ops: Vec<FusedOp>,
}

impl KernelPlan {
    /// The fused scan for this plan, if it qualifies (see [`FusedScan`]).
    /// Checked once per query; the scan loops take it as an `Option`.
    fn fused_ints(&self) -> Option<FusedScan> {
        let mut col: Option<&Arc<(Vec<i64>, Bitmap)>> = None;
        let mut ops = Vec::with_capacity(self.lanes.len());
        for lane in &self.lanes {
            if !lane.all_valid {
                return None;
            }
            match &lane.input {
                LaneInput::Star => ops.push(FusedOp::Star),
                LaneInput::Ints(c) => {
                    match col {
                        None => col = Some(c),
                        Some(prev) if Arc::ptr_eq(prev, c) => {}
                        Some(_) => return None,
                    }
                    ops.push(match lane.kernel {
                        // All-valid COUNT(x) counts every row, same as *.
                        Kernel::Count | Kernel::CountStar => FusedOp::Star,
                        Kernel::Sum => FusedOp::Sum,
                        Kernel::Min => FusedOp::Min,
                        Kernel::Max => FusedOp::Max,
                        Kernel::Avg => FusedOp::Avg,
                    });
                }
                LaneInput::Floats(_) => return None,
            }
        }
        Some(FusedScan {
            col: Arc::clone(col?),
            ops,
        })
    }

    /// Build per-measure [`RleIndex`]es for the RLE scan, deduplicated
    /// across lanes sharing one extracted column and kept only where the
    /// column compresses. Called once, only when the RLE path engages —
    /// the per-row paths never pay for it.
    fn attach_rle(&mut self) {
        let mut cache: Vec<(usize, Option<Arc<RleIndex>>)> = Vec::new();
        for lane in &mut self.lanes {
            let (ptr, built) = match &lane.input {
                LaneInput::Star => continue,
                LaneInput::Ints(col) => (
                    Arc::as_ptr(col) as usize,
                    RleIndex::from_i64(&col.0, &col.1),
                ),
                LaneInput::Floats(col) => (
                    Arc::as_ptr(col) as usize,
                    RleIndex::from_f64(&col.0, &col.1),
                ),
            };
            lane.rle = match cache.iter().find(|(p, _)| *p == ptr) {
                Some((_, idx)) => idx.clone(),
                None => {
                    let idx = built.is_beneficial().then(|| Arc::new(built));
                    cache.push((ptr, idx.clone()));
                    idx
                }
            };
        }
    }
}

/// Try to compile every aggregate to a kernel lane. `None` — an aggregate
/// without a kernel (holistic, user-defined, PRODUCT, ...) or a measure
/// column that is not purely `Int`/`NULL` or `Float`/`NULL` — sends the
/// whole query down the row path.
pub(crate) fn plan(rows: &[Row], aggs: &[BoundAgg]) -> Option<KernelPlan> {
    if aggs.is_empty() {
        return None;
    }
    // One extraction per distinct measure column, shared across lanes.
    enum Extracted {
        Ints(Arc<(Vec<i64>, Bitmap)>),
        Floats(Arc<(Vec<f64>, Bitmap)>),
    }
    let mut columns: FxHashMap<usize, Option<Extracted>> = FxHashMap::default();
    let mut lanes = Vec::with_capacity(aggs.len());
    for a in aggs {
        let kernel = a.func.kernel()?;
        let input = match a.input {
            // The unit input is a constant non-NULL value: only the
            // counting kernels read nothing and stay correct.
            None => match kernel {
                Kernel::Count | Kernel::CountStar => LaneInput::Star,
                _ => return None,
            },
            Some(idx) => match kernel {
                Kernel::CountStar => LaneInput::Star,
                _ => {
                    let extracted = columns.entry(idx).or_insert_with(|| {
                        if let Some(col) = Column::try_ints(rows, idx) {
                            let ColumnData::Int(vals) = col.data else {
                                // cube-lint: allow(panic, try_ints only ever builds Int column data)
                                unreachable!()
                            };
                            Some(Extracted::Ints(Arc::new((vals, col.validity))))
                        } else if let Some(col) = Column::try_floats(rows, idx) {
                            let ColumnData::Float(vals) = col.data else {
                                // cube-lint: allow(panic, try_floats only ever builds Float column data)
                                unreachable!()
                            };
                            Some(Extracted::Floats(Arc::new((vals, col.validity))))
                        } else {
                            None
                        }
                    });
                    match extracted {
                        Some(Extracted::Ints(c)) => LaneInput::Ints(Arc::clone(c)),
                        Some(Extracted::Floats(c)) => LaneInput::Floats(Arc::clone(c)),
                        None => return None,
                    }
                }
            },
        };
        let all_valid = match &input {
            LaneInput::Star => true,
            LaneInput::Ints(c) => c.1.all_valid(),
            LaneInput::Floats(c) => c.1.all_valid(),
        };
        lanes.push(Lane {
            kernel,
            input,
            all_valid,
            rle: None,
        });
    }
    Some(KernelPlan { lanes })
}

/// How a [`KernelArena`] resolves a packed key to a cell slot.
enum SlotIndex {
    /// General case: one Fx hash map over full keys.
    Map(FxHashMap<u64, u32>),
    /// Small key spaces (`table.len() == mask + 1`): `table[key & mask]`
    /// holds `slot + 1` (0 = empty) — the §5 dense-array idea applied to
    /// slot resolution. The mask is all-ones over the whole key for
    /// narrow encoders, or just the low bits inside a radix partition
    /// (every key in a partition shares the high bits).
    Dense { table: Vec<u32>, mask: u64 },
    /// An assembled radix result: slots are final, no further inserts.
    Frozen,
}

/// Flat kernel-cell storage for one grouping set, mirroring
/// [`super::encoded::Arena`]: the index resolves a packed key to a cell
/// slot, `keys[slot]` remembers the full key for decoding, and cell
/// `i`'s lanes occupy `cells[i*n_lanes..(i+1)*n_lanes]`. Slots are
/// assigned in first-touch order, so iteration over `keys` is
/// deterministic.
pub(crate) struct KernelArena {
    index: SlotIndex,
    keys: Vec<u64>,
    cells: Vec<KernelCell>,
    n_lanes: usize,
}

impl KernelArena {
    fn new(n_lanes: usize) -> Self {
        KernelArena {
            index: SlotIndex::Map(FxHashMap::default()),
            keys: Vec::new(),
            cells: Vec::new(),
            n_lanes,
        }
    }

    fn with_capacity(n_lanes: usize, cells: usize) -> Self {
        KernelArena {
            index: SlotIndex::Map(FxHashMap::with_capacity_and_hasher(
                cells,
                Default::default(),
            )),
            keys: Vec::with_capacity(cells),
            cells: Vec::with_capacity(cells * n_lanes),
            n_lanes,
        }
    }

    /// A dense-indexed arena over `key & mask` (`mask + 1` table slots).
    fn dense(n_lanes: usize, mask: u64) -> Self {
        KernelArena {
            index: SlotIndex::Dense {
                table: vec![0u32; mask as usize + 1],
                mask,
            },
            keys: Vec::new(),
            cells: Vec::new(),
            n_lanes,
        }
    }

    /// Pick dense slot resolution when the key space is at most
    /// [`DENSE_SLOT_BITS`] wide *and* small relative to the expected
    /// input (`hint` rows/cells) — a giant mostly-empty table loses to
    /// the hash map on allocation and cache footprint alone.
    fn sized_for(n_lanes: usize, key_bits: u32, hint: usize) -> Self {
        if key_bits <= DENSE_SLOT_BITS && (1usize << key_bits) <= (64 * hint).max(1024) {
            KernelArena::dense(n_lanes, (1u64 << key_bits) - 1)
        } else {
            KernelArena::new(n_lanes)
        }
    }

    fn n_cells(&self) -> usize {
        self.keys.len()
    }

    /// The cell slot for `key`; a fresh cell charges the budget and
    /// zero-initializes its lanes (the kernels' Init is `default()` — no
    /// user code, so no panic guard needed).
    #[inline]
    fn slot(&mut self, key: u64, ctx: &ExecContext) -> CubeResult<u32> {
        let next = self.keys.len() as u32;
        match &mut self.index {
            SlotIndex::Map(map) => match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => return Ok(*e.get()),
                std::collections::hash_map::Entry::Vacant(e) => {
                    ctx.charge_cells(1)?;
                    e.insert(next);
                }
            },
            SlotIndex::Dense { table, mask } => {
                let t = &mut table[(key & *mask) as usize];
                if *t != 0 {
                    return Ok(*t - 1);
                }
                ctx.charge_cells(1)?;
                *t = next + 1;
            }
            SlotIndex::Frozen => {
                // cube-lint: allow(panic, frozen arenas are only iterated, never inserted into)
                unreachable!("insert into a frozen radix arena")
            }
        }
        self.keys.push(key);
        self.cells
            .resize(self.cells.len() + self.n_lanes, KernelCell::default());
        Ok(next)
    }

    /// Resolve one morsel of keys to slots, appended to `slot_buf`. For
    /// dense arenas the index `match` (and its bounds state) is hoisted
    /// out of the per-row loop; other arenas fall back to [`Self::slot`].
    #[inline]
    fn slots_for(
        &mut self,
        morsel_keys: &[u64],
        slot_buf: &mut Vec<u32>,
        ctx: &ExecContext,
    ) -> CubeResult<()> {
        if let SlotIndex::Dense { table, mask } = &mut self.index {
            let mask = *mask;
            // cube-lint: allow(checkpoint, bounded by one morsel; the caller checkpoints per morsel)
            for &key in morsel_keys {
                let t = &mut table[(key & mask) as usize];
                if *t != 0 {
                    slot_buf.push(*t - 1);
                    continue;
                }
                ctx.charge_cells(1)?;
                let next = self.keys.len() as u32;
                *t = next + 1;
                self.keys.push(key);
                self.cells
                    .resize(self.cells.len() + self.n_lanes, KernelCell::default());
                slot_buf.push(next);
            }
            return Ok(());
        }
        // cube-lint: allow(checkpoint, bounded by one morsel; the caller checkpoints per morsel)
        for &key in morsel_keys {
            let s = self.slot(key, ctx)?;
            slot_buf.push(s);
        }
        Ok(())
    }

    /// Slot lookup-or-insert without budget accounting and without cell
    /// allocation — the parallel coalesce, where cells were already
    /// charged by the worker that created them and fresh slots adopt the
    /// worker's cells wholesale. Returns `(slot, fresh)`.
    #[inline]
    fn entry_uncharged(&mut self, key: u64) -> (u32, bool) {
        let next = self.keys.len() as u32;
        let (slot, fresh) = match &mut self.index {
            SlotIndex::Map(map) => match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(next);
                    (next, true)
                }
            },
            SlotIndex::Dense { table, mask } => {
                let t = &mut table[(key & *mask) as usize];
                if *t != 0 {
                    (*t - 1, false)
                } else {
                    *t = next + 1;
                    (next, true)
                }
            }
            SlotIndex::Frozen => {
                // cube-lint: allow(panic, frozen arenas are only iterated, never inserted into)
                unreachable!("insert into a frozen radix arena")
            }
        };
        if fresh {
            self.keys.push(key);
        }
        (slot, fresh)
    }

    /// Rehydrate every cell into boxed row-path accumulators keyed by
    /// decoded `Row`s. Production code materializes straight from cells
    /// via [`KernelSets::materialize`]; this hydration exists so tests
    /// can compare kernel results against row-path `GroupMap`s cell by
    /// cell.
    #[cfg(test)]
    fn into_group_map(
        self,
        encoder: &KeyEncoder,
        plan: &KernelPlan,
        aggs: &[BoundAgg],
    ) -> CubeResult<GroupMap> {
        let n = self.n_lanes;
        let mut map = GroupMap::with_capacity_and_hasher(self.keys.len(), Default::default());
        for (slot, &key) in self.keys.iter().enumerate() {
            let base = slot * n;
            let mut accs = Vec::with_capacity(n);
            for (lane, (cell, agg)) in plan
                .lanes
                .iter()
                .zip(self.cells[base..base + n].iter().zip(aggs))
            {
                let mut acc = exec::guard(agg.func.name(), || agg.func.init())?;
                lane.kernel
                    .rehydrate(acc.as_mut(), cell, lane.float_input());
                accs.push(acc);
            }
            map.insert(encoder.decode_key(key), accs);
        }
        Ok(map)
    }
}

/// The vectorized query result: one kernel arena per grouping set (in
/// lattice order) plus what is needed to decode keys and finalize cells.
/// The counterpart of [`SetMaps`] that never boxes an accumulator —
/// finals come straight from the POD cells at materialization time.
pub(crate) struct KernelSets {
    pub(crate) sets: Vec<(GroupingSet, KernelArena)>,
    plan: KernelPlan,
    encoder: KeyEncoder,
}

impl KernelSets {
    /// The direct materializer: the exact output contract of
    /// [`crate::groupby::materialize`] (sets in lattice order, each set's
    /// rows sorted by key with `ALL` collating last, one `final_calls`
    /// per (cell, aggregate)) without the `GroupMap` detour.
    pub(crate) fn materialize(
        self,
        schema: dc_relation::Schema,
        stats: &mut ExecStats,
        ctx: &ExecContext,
    ) -> CubeResult<dc_relation::Table> {
        exec::failpoint("materialize")?;
        let KernelSets {
            sets,
            plan,
            encoder,
        } = self;
        let n = plan.lanes.len();
        let nd = encoder.n_dims();
        // Sort each set by collation-remapped keys — a plain `u64` sort in
        // decoded-`Row` order — then decode each key exactly once while
        // emitting. Decode-then-compare-`Row`s costs ~10× more on large
        // results.
        let collator = encoder.collator();

        // Per-set prep: collation-sort the cells and invert to a
        // slot -> output-rank map, laying out each set's base offset in
        // the final table. Rows are then *emitted in slot order* — keys
        // and cells stream sequentially instead of one gather cache miss
        // per cell — and each decoded row scatters to its ranked slot.
        let mut ranks: Vec<Vec<u32>> = Vec::with_capacity(sets.len());
        let mut bases: Vec<usize> = Vec::with_capacity(sets.len());
        let mut total = 0usize;
        let mut order: Vec<(u64, u32)> = Vec::new();
        for (_set, arena) in &sets {
            ctx.checkpoint()?;
            order.clear();
            order.extend(
                arena
                    .keys
                    .iter()
                    .enumerate()
                    .map(|(slot, &key)| (collator.sort_key(key), slot as u32)),
            );
            order.sort_unstable_by_key(|c| c.0);
            let mut rank: Vec<u32> = vec![0; order.len()];
            for (i, &(_, slot)) in order.iter().enumerate() {
                rank[slot as usize] = i as u32;
            }
            ranks.push(rank);
            bases.push(total);
            total += arena.keys.len();
        }

        // Decode slots `[lo, hi)` of set `si` into `(output index, Row)`
        // pairs. Shared by the serial and parallel emitters below.
        let emit = |si: usize,
                    lo: usize,
                    hi: usize,
                    out: &mut Vec<(usize, Row)>,
                    final_calls: &mut u64,
                    ctx: &ExecContext|
         -> CubeResult<()> {
            let arena = &sets[si].1;
            let (rank, set_base) = (&ranks[si], bases[si]);
            for ((off, &key), &rk) in arena.keys[lo..hi].iter().enumerate().zip(&rank[lo..hi]) {
                let slot = lo + off;
                ctx.tick(slot)?;
                let mut vals = Vec::with_capacity(nd + n);
                encoder.append_key(key, &mut vals);
                let cbase = slot * n;
                // cube-lint: allow(checkpoint, bounded by the lane count; the cell loop above ticks)
                for (lane, cell) in plan.lanes.iter().zip(&arena.cells[cbase..cbase + n]) {
                    // cube-lint: allow(guard, engine-owned POD kernel, runs no user code)
                    vals.push(lane.kernel.final_value(cell, lane.float_input()));
                    *final_calls += 1;
                }
                out.push((set_base + rk as usize, Row::new(vals)));
            }
            Ok(())
        };

        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        let mut rows: Vec<Row> = vec![Row::new(Vec::new()); total];
        if threads > 1 && total >= PARALLEL_CASCADE_MIN_CELLS {
            // Large results: workers pull fixed slot chunks from a cursor
            // (decode cost is uniform per cell, and chunks keep the
            // sequential-read layout), then one pass scatters the built
            // rows — cheap `Row` moves — into final positions.
            let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
            for (si, (_, arena)) in sets.iter().enumerate() {
                let mut lo = 0;
                while lo < arena.keys.len() {
                    let hi = (lo + EMIT_CHUNK_CELLS).min(arena.keys.len());
                    tasks.push((si, lo, hi));
                    lo = hi;
                }
            }
            let cursor = AtomicUsize::new(0);
            type EmitOutcome = (CubeResult<Vec<(usize, Row)>>, u64);
            let emit_ref = &emit;
            let tasks_ref = &tasks;
            let cursor_ref = &cursor;
            let outcomes: Vec<EmitOutcome> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads.min(tasks.len()))
                    .map(|_| {
                        scope.spawn(move |_| -> EmitOutcome {
                            let mut out = Vec::new();
                            let mut final_calls = 0u64;
                            loop {
                                // cube-lint: allow(atomic, morsel work-claim counter: each claimed task is consumed only by the claiming thread, over data made visible by the scoped spawn)
                                let t = cursor_ref.fetch_add(1, Ordering::Relaxed);
                                if t >= tasks_ref.len() {
                                    break;
                                }
                                let (si, lo, hi) = tasks_ref[t];
                                if let Err(e) =
                                    emit_ref(si, lo, hi, &mut out, &mut final_calls, ctx)
                                {
                                    return (Err(e), final_calls);
                                }
                            }
                            (Ok(out), final_calls)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|p| {
                            (Err(exec::panic_error("materialize", p.as_ref())), 0)
                        })
                    })
                    .collect()
            })
            .unwrap_or_else(|p| vec![(Err(exec::panic_error("materialize", p.as_ref())), 0)]);
            // Fold every worker's stats in before surfacing the first
            // error, mirroring the scan and cascade scopes.
            let mut failed = None;
            for (result, final_calls) in outcomes {
                stats.final_calls += final_calls;
                match result {
                    Ok(pairs) => {
                        // cube-lint: allow(checkpoint, plain Row moves; workers polled per cell while decoding)
                        for (idx, row) in pairs {
                            rows[idx] = row;
                        }
                    }
                    Err(e) => failed = failed.or(Some(e)),
                }
            }
            if let Some(e) = failed {
                return Err(e);
            }
        } else {
            let mut out: Vec<(usize, Row)> = Vec::new();
            let mut final_calls = 0u64;
            for (si, set) in sets.iter().enumerate() {
                out.clear();
                emit(si, 0, set.1.keys.len(), &mut out, &mut final_calls, ctx)?;
                // cube-lint: allow(checkpoint, plain Row moves; emit above polled per cell)
                for (idx, row) in out.drain(..) {
                    rows[idx] = row;
                }
            }
            stats.final_calls += final_calls;
        }
        Ok(dc_relation::Table::from_validated_rows(schema, rows))
    }

    /// Hydrate into the row-path representation — test-only, for
    /// comparing against row-engine `SetMaps` cell by cell.
    #[cfg(test)]
    pub(crate) fn into_set_maps(self, aggs: &[BoundAgg]) -> CubeResult<SetMaps> {
        let KernelSets {
            sets,
            plan,
            encoder,
        } = self;
        sets.into_iter()
            .map(|(s, arena)| Ok((s, arena.into_group_map(&encoder, &plan, aggs)?)))
            .collect()
    }
}

/// The validity words for morsel rows `[base, base + n)`: morsels start
/// on 64-row boundaries, so this is a whole-word slice of the column's
/// bitmap (tail bits past the column end are zero by construction).
fn morsel_validity(bitmap: &Bitmap, all_valid: bool, base: usize, n: usize) -> Validity<'_> {
    if all_valid {
        Validity::All
    } else {
        Validity::Words(&bitmap.words()[base / 64..(base + n).div_ceil(64)])
    }
}

/// Run every lane's kernel over one morsel. `slots[j]` is the group slot
/// of row `base + j`; `iter_calls` counts one fold per (row, lane), the
/// row path's accounting.
fn update_morsel(
    arena: &mut KernelArena,
    plan: &KernelPlan,
    fused: Option<&FusedScan>,
    slots: &[u32],
    base: usize,
    stats: &mut ExecStats,
) {
    debug_assert_eq!(base % 64, 0);
    let n = slots.len();
    let stride = plan.lanes.len();
    if let Some(f) = fused {
        dc_aggregate::update_i64_fused(&mut arena.cells, &f.ops, slots, &f.col.0[base..base + n]);
        stats.iter_calls += (n * stride) as u64;
        return;
    }
    for (l, lane) in plan.lanes.iter().enumerate() {
        match &lane.input {
            LaneInput::Star => Kernel::update_star(&mut arena.cells, stride, l, slots),
            LaneInput::Ints(col) => lane.kernel.update_i64(
                &mut arena.cells,
                stride,
                l,
                slots,
                &col.0[base..base + n],
                morsel_validity(&col.1, lane.all_valid, base, n),
            ),
            LaneInput::Floats(col) => lane.kernel.update_f64(
                &mut arena.cells,
                stride,
                l,
                slots,
                &col.0[base..base + n],
                morsel_validity(&col.1, lane.all_valid, base, n),
            ),
        }
        stats.iter_calls += slots.len() as u64;
    }
}

/// Scan one morsel `[base, end)` into `arena`: resolve every row's slot
/// (charging fresh cells), then one kernel pass per lane.
#[allow(clippy::too_many_arguments)]
fn scan_morsel(
    arena: &mut KernelArena,
    enc: &EncodedInput,
    plan: &KernelPlan,
    fused: Option<&FusedScan>,
    slot_buf: &mut Vec<u32>,
    base: usize,
    end: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<()> {
    exec::failpoint("vectorized::morsel")?;
    ctx.checkpoint()?;
    slot_buf.clear();
    let resolved = arena.slots_for(&enc.keys[base..end], slot_buf, ctx);
    // On a mid-morsel budget trip, the slots resolved so far are the rows
    // actually scanned — surface that partial progress in the error stats.
    stats.rows_scanned += if resolved.is_ok() {
        (end - base) as u64
    } else {
        slot_buf.len() as u64
    };
    resolved?;
    update_morsel(arena, plan, fused, slot_buf, base, stats);
    stats.morsels_processed += 1;
    Ok(())
}

/// The core GROUP BY: a serial morsel walk (row order preserved, so float
/// accumulation is bit-identical to the row path).
fn compute_core(
    enc: &EncodedInput,
    plan: &KernelPlan,
    n_rows: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<KernelArena> {
    exec::failpoint("core::scan")?;
    let mut arena = KernelArena::sized_for(plan.lanes.len(), enc.encoder.total_bits(), n_rows);
    let fused = plan.fused_ints();
    let mut slot_buf = Vec::with_capacity(MORSEL_ROWS.min(n_rows));
    let mut base = 0;
    // cube-lint: allow(checkpoint, scan_morsel checkpoints at its own failpoint per morsel)
    while base < n_rows {
        let end = (base + MORSEL_ROWS).min(n_rows);
        scan_morsel(
            &mut arena,
            enc,
            plan,
            fused.as_ref(),
            &mut slot_buf,
            base,
            end,
            stats,
            ctx,
        )?;
        base = end;
    }
    Ok(arena)
}

/// Scan one RLE morsel `[base, end)`: detect maximal key runs and fold
/// each run's rows into its cell with one kernel call — `n × value` when
/// the measure is constant over the run, a register-reduction fold when it
/// is merely fully valid, a masked fold otherwise. Row order within and
/// across runs matches the plain scan, so float results are bit-identical.
#[allow(clippy::too_many_arguments)]
fn scan_morsel_rle(
    arena: &mut KernelArena,
    enc: &EncodedInput,
    plan: &KernelPlan,
    base: usize,
    end: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<()> {
    exec::failpoint("vectorized::rle_run")?;
    ctx.checkpoint()?;
    let stride = plan.lanes.len();
    let keys = &enc.keys;
    let mut s = base;
    // cube-lint: allow(checkpoint, run count per morsel is bounded by MORSEL_ROWS; the enclosing morsel loop checkpoints)
    while s < end {
        let key = keys[s];
        let mut e = s + 1;
        while e < end && keys[e] == key {
            e += 1;
        }
        let len = e - s;
        let slot = arena.slot(key, ctx)? as usize;
        let cbase = slot * stride;
        for (l, lane) in plan.lanes.iter().enumerate() {
            let cell = &mut arena.cells[cbase + l];
            match &lane.input {
                LaneInput::Star => Kernel::fold_star(cell, len as i64),
                LaneInput::Ints(col) => {
                    if lane.all_valid {
                        let constant = lane.rle.as_ref().is_some_and(|r| r.constant_over(s, e));
                        if constant {
                            lane.kernel.fold_repeat_i64(cell, col.0[s], len as i64);
                        } else {
                            lane.kernel.fold_i64(cell, &col.0[s..e]);
                        }
                    } else {
                        lane.kernel
                            .fold_i64_masked(cell, &col.0, col.1.words(), s, e);
                    }
                }
                LaneInput::Floats(col) => {
                    if lane.all_valid {
                        let constant = lane.rle.as_ref().is_some_and(|r| r.constant_over(s, e));
                        if constant {
                            lane.kernel.fold_repeat_f64(cell, col.0[s], len as i64);
                        } else {
                            lane.kernel.fold_f64(cell, &col.0[s..e]);
                        }
                    } else {
                        lane.kernel
                            .fold_f64_masked(cell, &col.0, col.1.words(), s, e);
                    }
                }
            }
            stats.iter_calls += len as u64;
        }
        stats.rows_scanned += len as u64;
        stats.rle_runs += 1;
        s = e;
    }
    stats.morsels_processed += 1;
    Ok(())
}

/// The core GROUP BY over run-length-compressed keys: the same serial
/// morsel walk as [`compute_core`], but each morsel is scanned run-at-a-
/// time by [`scan_morsel_rle`].
fn compute_core_rle(
    enc: &EncodedInput,
    plan: &KernelPlan,
    n_rows: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<KernelArena> {
    exec::failpoint("core::scan")?;
    let mut arena = KernelArena::sized_for(plan.lanes.len(), enc.encoder.total_bits(), n_rows);
    let mut base = 0;
    // cube-lint: allow(checkpoint, scan_morsel_rle checkpoints at its own failpoint per morsel)
    while base < n_rows {
        let end = (base + MORSEL_ROWS).min(n_rows);
        scan_morsel_rle(&mut arena, enc, plan, base, end, stats, ctx)?;
        base = end;
    }
    Ok(arena)
}

/// Partition-count heuristic for radix grouping: peel the key bits above
/// [`DENSE_SLOT_BITS`] into the partition index (so every partition's
/// residual key space fits a dense table), clamped to `2^4..=2^12`
/// partitions. Narrow keys (which would not use radix anyway) get a
/// token 2-partition split so the path stays exercisable when forced.
fn radix_partition_bits(key_bits: u32) -> u32 {
    if key_bits > DENSE_SLOT_BITS {
        (key_bits - DENSE_SLOT_BITS).clamp(4, 12)
    } else {
        key_bits.clamp(1, 4).min(key_bits.max(1))
    }
}

/// Should the RLE scan run? Explicit override wins; otherwise engage on
/// large inputs whose leading keys sample to runs of at least
/// [`RLE_AUTO_MIN_RUN`] rows.
fn rle_engages(opt: Option<bool>, enc: &EncodedInput, n_rows: usize) -> bool {
    match opt {
        Some(x) => x && n_rows > 0,
        None => {
            if n_rows < RLE_AUTO_MIN_ROWS {
                return false;
            }
            let sample = &enc.keys[..n_rows.min(4096)];
            let runs = 1 + sample.windows(2).filter(|w| w[0] != w[1]).count();
            sample.len() / runs >= RLE_AUTO_MIN_RUN
        }
    }
}

/// Should radix-partitioned grouping run? Explicit override wins;
/// otherwise engage on large inputs whose key space overflows one dense
/// slot table — exactly when the single shared hash map starts missing
/// cache on every probe.
fn radix_engages(opt: Option<bool>, enc: &EncodedInput, n_rows: usize) -> bool {
    if n_rows == 0 {
        return false;
    }
    match opt {
        Some(x) => x,
        None => enc.encoder.total_bits() > DENSE_SLOT_BITS && n_rows >= RADIX_AUTO_MIN_ROWS,
    }
}

/// The core GROUP BY by radix partitioning (§5's "partition the cube into
/// chunks" applied to grouping): scatter row indices into `2^p_bits`
/// partitions by high key bits, then aggregate each partition into its
/// own arena — dense-indexed over the low bits whenever the residual key
/// space allows — and concatenate. No lock is ever taken on an arena:
/// phase 1 writes thread-local buckets, phase 2 gives each partition to
/// exactly one worker.
///
/// Determinism: each key lives in exactly one partition, phase 1 workers
/// own fixed contiguous row ranges and scatter in row order, and phase 2
/// replays each partition's buckets in worker (= row) order — so every
/// group folds its rows in global row order and float accumulation is
/// bit-identical to the single-map scan. Partitions are assembled in
/// partition order, giving a deterministic (if different from
/// first-touch) slot order; `materialize` sorts cells by decoded key, so
/// output order is unchanged.
fn radix_core(
    enc: &EncodedInput,
    plan: &KernelPlan,
    n_rows: usize,
    threads: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<KernelArena> {
    exec::failpoint("core::scan")?;
    let n = plan.lanes.len();
    let key_bits = enc.encoder.total_bits();
    let p_bits = radix_partition_bits(key_bits);
    let n_parts = 1usize << p_bits;
    let shift = key_bits.saturating_sub(p_bits);
    stats.radix_partitions = stats.radix_partitions.max(n_parts as u32);

    let threads = threads.max(1).min(n_rows.max(1));

    // Phase 1: scatter row indices into per-worker partition buckets.
    // Workers take fixed contiguous chunks (not cursor-pulled morsels) so
    // bucket contents are a deterministic function of the input, and
    // phase 2 can replay them in row order.
    type ScatterOutcome = (CubeResult<Vec<Vec<u32>>>, ExecStats);
    let scatter_chunk = |lo: usize, hi: usize, ctx: &ExecContext| -> ScatterOutcome {
        let mut local = ExecStats::default();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
        let mut base = lo;
        // cube-lint: allow(checkpoint, the per-morsel failpoint+checkpoint below bounds poll latency)
        while base < hi {
            let end = (base + MORSEL_ROWS).min(hi);
            if let Err(e) = exec::failpoint("vectorized::radix_partition") {
                return (Err(e), local);
            }
            if let Err(e) = ctx.checkpoint() {
                return (Err(e), local);
            }
            for (i, &key) in enc.keys[base..end].iter().enumerate() {
                buckets[(key >> shift) as usize].push((base + i) as u32);
            }
            local.rows_scanned += (end - base) as u64;
            local.morsels_processed += 1;
            base = end;
        }
        (Ok(buckets), local)
    };

    let chunk = n_rows.div_ceil(threads);
    let scattered: Vec<ScatterOutcome> = if threads > 1 {
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = (w * chunk).min(n_rows);
                    let hi = (lo + chunk).min(n_rows);
                    scope.spawn(move |_| scatter_chunk(lo, hi, ctx))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        (
                            Err(exec::panic_error("vectorized::radix_partition", p.as_ref())),
                            ExecStats::default(),
                        )
                    })
                })
                .collect()
        })
        .unwrap_or_else(|p| {
            vec![(
                Err(exec::panic_error("vectorized::radix_partition", p.as_ref())),
                ExecStats::default(),
            )]
        })
    } else {
        vec![scatter_chunk(0, n_rows, ctx)]
    };

    let mut failed = None;
    let mut worker_buckets: Vec<Vec<Vec<u32>>> = Vec::with_capacity(scattered.len());
    for (result, local) in scattered {
        stats.add(&local);
        match result {
            Ok(b) => worker_buckets.push(b),
            Err(e) => failed = failed.or(Some(e)),
        }
    }
    if let Some(e) = failed {
        return Err(e);
    }

    // Phase 2: one owner per partition, pulled from an atomic cursor.
    // Each partition's rows are replayed in worker order (= row order,
    // because phase 1 chunks are contiguous and ordered) through the
    // gather kernels.
    let fused = plan.fused_ints();
    let aggregate_partition = |p: usize,
                               stats: &mut ExecStats,
                               ctx: &ExecContext|
     -> CubeResult<KernelArena> {
        let part_rows: usize = worker_buckets.iter().map(|b| b[p].len()).sum();
        let mut arena = if shift <= DENSE_SLOT_BITS {
            // Every key in this partition shares the high bits, so the
            // low `shift` bits index a dense table.
            KernelArena::dense(n, (1u64 << shift) - 1)
        } else {
            KernelArena::with_capacity(n, part_rows.min(1 << 10))
        };
        let mut slot_buf: Vec<u32> = Vec::with_capacity(MORSEL_ROWS);
        let mut key_buf: Vec<u64> = Vec::with_capacity(MORSEL_ROWS);
        for bucket in worker_buckets.iter().map(|b| &b[p]) {
            let mut base = 0;
            // cube-lint: allow(checkpoint, the per-chunk failpoint+checkpoint below bounds poll latency)
            while base < bucket.len() {
                let end = (base + MORSEL_ROWS).min(bucket.len());
                exec::failpoint("vectorized::radix_partition")?;
                ctx.checkpoint()?;
                let idxs = &bucket[base..end];
                slot_buf.clear();
                key_buf.clear();
                key_buf.extend(idxs.iter().map(|&ri| enc.keys[ri as usize]));
                arena.slots_for(&key_buf, &mut slot_buf, ctx)?;
                if let Some(f) = &fused {
                    dc_aggregate::update_i64_gather_fused(
                        &mut arena.cells,
                        &f.ops,
                        &slot_buf,
                        idxs,
                        &f.col.0,
                    );
                    stats.iter_calls += (idxs.len() * n) as u64;
                    base = end;
                    continue;
                }
                for (l, lane) in plan.lanes.iter().enumerate() {
                    match &lane.input {
                        LaneInput::Star => Kernel::update_star(&mut arena.cells, n, l, &slot_buf),
                        LaneInput::Ints(col) => lane.kernel.update_i64_gather(
                            &mut arena.cells,
                            n,
                            l,
                            &slot_buf,
                            idxs,
                            &col.0,
                            (!lane.all_valid).then(|| col.1.words()),
                        ),
                        LaneInput::Floats(col) => lane.kernel.update_f64_gather(
                            &mut arena.cells,
                            n,
                            l,
                            &slot_buf,
                            idxs,
                            &col.0,
                            (!lane.all_valid).then(|| col.1.words()),
                        ),
                    }
                    stats.iter_calls += idxs.len() as u64;
                }
                base = end;
            }
        }
        Ok(arena)
    };

    type PartOutcome = (CubeResult<Vec<(usize, KernelArena)>>, ExecStats);
    let parts: Vec<PartOutcome> = if threads > 1 {
        let cursor = AtomicUsize::new(0);
        let cursor_ref = &cursor;
        let aggregate_ref = &aggregate_partition;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move |_| -> PartOutcome {
                        let mut local = ExecStats::default();
                        let mut built = Vec::new();
                        loop {
                            // cube-lint: allow(atomic, morsel work-claim counter: each claimed partition is consumed only by the claiming thread, over data made visible by the scoped spawn)
                            let p = cursor_ref.fetch_add(1, Ordering::Relaxed);
                            if p >= n_parts {
                                break;
                            }
                            match aggregate_ref(p, &mut local, ctx) {
                                Ok(arena) => built.push((p, arena)),
                                Err(e) => return (Err(e), local),
                            }
                        }
                        (Ok(built), local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        (
                            Err(exec::panic_error("vectorized::radix_partition", p.as_ref())),
                            ExecStats::default(),
                        )
                    })
                })
                .collect()
        })
        .unwrap_or_else(|p| {
            vec![(
                Err(exec::panic_error("vectorized::radix_partition", p.as_ref())),
                ExecStats::default(),
            )]
        })
    } else {
        let mut local = ExecStats::default();
        let mut built = Vec::with_capacity(n_parts);
        let mut err = None;
        for p in 0..n_parts {
            // cube-lint: allow(checkpoint, aggregate_partition checkpoints per chunk inside)
            match aggregate_partition(p, &mut local, ctx) {
                Ok(arena) => built.push((p, arena)),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            None => vec![(Ok(built), local)],
            Some(e) => vec![(Err(e), local)],
        }
    };

    let mut failed = None;
    let mut arenas: Vec<(usize, KernelArena)> = Vec::with_capacity(n_parts);
    for (result, local) in parts {
        stats.add(&local);
        match result {
            Ok(built) => arenas.extend(built),
            Err(e) => failed = failed.or(Some(e)),
        }
    }
    if let Some(e) = failed {
        return Err(e);
    }
    arenas.sort_by_key(|(p, _)| *p);

    // Assemble: concatenate partition arenas in partition order. Slots
    // are final, so the result needs no index — it is only iterated.
    let total: usize = arenas.iter().map(|(_, a)| a.n_cells()).sum();
    let mut keys = Vec::with_capacity(total);
    let mut cells = Vec::with_capacity(total * n);
    for (_, arena) in arenas {
        keys.extend_from_slice(&arena.keys);
        cells.extend_from_slice(&arena.cells);
    }
    Ok(KernelArena {
        index: SlotIndex::Frozen,
        keys,
        cells,
        n_lanes: n,
    })
}

/// From-core on kernels: core scan + [`cascade`]. Takes the plan by value
/// — the returned [`KernelSets`] owns it through materialization.
///
/// `opts` picks the core-scan strategy: the RLE run-fold scan when it
/// engages (forced or auto — sorted/low-cardinality key streams), else
/// radix-partitioned grouping when *it* engages (forced or auto — wide
/// key spaces at scale), else the plain morsel scan. RLE wins when both
/// are viable: folding whole runs subsumes the partitioning win, and
/// sorted keys make partition scatter pure overhead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn from_core(
    enc: &EncodedInput,
    plan: KernelPlan,
    n_rows: usize,
    lattice: &Lattice,
    choice: ParentChoice,
    opts: PathOpts,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<KernelSets> {
    // Recorded before the scan so partial stats on a budget trip already
    // say which engine was running.
    stats.vectorized_kernels_used = stats.vectorized_kernels_used.max(plan.lanes.len() as u64);
    let mut plan = plan;
    let core = if rle_engages(opts.rle, enc, n_rows) {
        plan.attach_rle();
        compute_core_rle(enc, &plan, n_rows, stats, ctx)?
    } else if radix_engages(opts.radix, enc, n_rows) {
        radix_core(enc, &plan, n_rows, 1, stats, ctx)?
    } else {
        compute_core(enc, &plan, n_rows, stats, ctx)?
    };
    let sets = cascade(core, &enc.encoder, &plan, lattice, choice, stats, ctx)?;
    Ok(KernelSets {
        sets,
        plan,
        encoder: enc.encoder.clone(),
    })
}

/// Build one child set by folding a parent arena through the set's mask —
/// the paper's Iter_super, one `merge` per (parent cell, lane), the same
/// count as the accumulator cascades.
fn merged_child(
    parent: &KernelArena,
    mask: u64,
    key_bits: u32,
    plan: &KernelPlan,
    ctx: &ExecContext,
) -> CubeResult<(KernelArena, u64)> {
    let n = plan.lanes.len();
    let hint = parent.n_cells() / 2 + 1;
    // Children index masked keys through the same packed-key space, so a
    // narrow encoder gets the dense table here too; wide keys keep a
    // pre-sized map (children shrink, but rarely below half the parent).
    let mut child = if key_bits <= DENSE_SLOT_BITS && (1usize << key_bits) <= (64 * hint).max(1024)
    {
        KernelArena::dense(n, (1u64 << key_bits) - 1)
    } else {
        KernelArena::with_capacity(n, hint)
    };
    let mut merges = 0u64;
    for (pslot, &pkey) in parent.keys.iter().enumerate() {
        ctx.tick(pslot)?;
        let cslot = child.slot(pkey & mask, ctx)? as usize;
        let pbase = pslot * n;
        let srcs = &parent.cells[pbase..pbase + n];
        let dsts = &mut child.cells[cslot * n..(cslot + 1) * n];
        for ((lane, src), dst) in plan.lanes.iter().zip(srcs).zip(dsts) {
            lane.kernel
                // cube-lint: allow(guard, engine-owned POD kernel, runs no user code)
                .merge(dst, src, lane.float_input());
            merges += 1;
        }
    }
    Ok((child, merges))
}

/// The cascade over kernel arenas, parallel by lattice level with
/// task-pulling workers.
///
/// The level-at-a-time schedule is inherited from the accumulator cascade
/// (parents always live in earlier levels); within a level, workers pull
/// `(set, parent)` tasks from an atomic cursor instead of receiving
/// pre-chunked slices, so one slow set (a huge parent arena) does not
/// serialize the rest of its chunk behind it.
fn cascade(
    core: KernelArena,
    encoder: &KeyEncoder,
    plan: &KernelPlan,
    lattice: &Lattice,
    choice: ParentChoice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<Vec<(GroupingSet, KernelArena)>> {
    let core_set = lattice.core();
    let cardinalities = encoder.cardinalities();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let go_parallel = threads > 1 && core.n_cells() >= PARALLEL_CASCADE_MIN_CELLS;

    let mut done: FxHashMap<GroupingSet, KernelArena> = FxHashMap::default();
    let mut order: Vec<GroupingSet> = Vec::with_capacity(lattice.sets().len());
    done.insert(core_set, core);
    order.push(core_set);

    let sets: Vec<GroupingSet> = lattice
        .sets()
        .iter()
        .copied()
        .filter(|&s| s != core_set)
        .collect();
    let mut i = 0;
    while i < sets.len() {
        let arity = sets[i].len();
        let mut level: Vec<(GroupingSet, GroupingSet)> = Vec::new();
        while i < sets.len() && sets[i].len() == arity {
            let set = sets[i];
            let parent = match choice {
                ParentChoice::AlwaysCore => core_set,
                ParentChoice::SmallestCardinality => {
                    lattice.choose_parent(set, &cardinalities, &order)
                }
                ParentChoice::LargestCardinality => {
                    super::from_core::choose_largest(lattice, set, &cardinalities, &order)
                }
            };
            level.push((set, parent));
            i += 1;
        }

        let built: Vec<(GroupingSet, KernelArena, u64)> = if go_parallel && level.len() > 1 {
            let workers = threads.min(level.len());
            let cursor = AtomicUsize::new(0);
            let done_ref = &done;
            let level_ref = &level;
            let cursor_ref = &cursor;
            // Join every handle before surfacing any error — see the
            // accumulator cascade.
            let joined: Vec<CubeResult<Vec<(GroupingSet, KernelArena, u64)>>> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            scope.spawn(move |_| -> CubeResult<Vec<_>> {
                                exec::failpoint("cascade::level")?;
                                let mut built = Vec::new();
                                loop {
                                    // cube-lint: allow(atomic, morsel work-claim counter: each claimed task is consumed only by the claiming thread, over data made visible by the scoped spawn)
                                    let t = cursor_ref.fetch_add(1, Ordering::Relaxed);
                                    if t >= level_ref.len() {
                                        break;
                                    }
                                    let (set, parent) = level_ref[t];
                                    ctx.checkpoint()?;
                                    let (arena, merges) = merged_child(
                                        &done_ref[&parent],
                                        encoder.set_mask(set),
                                        encoder.total_bits(),
                                        plan,
                                        ctx,
                                    )?;
                                    built.push((set, arena, merges));
                                }
                                Ok(built)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|p| {
                                Err(exec::panic_error("cascade::level", p.as_ref()))
                            })
                        })
                        .collect()
                })
                .unwrap_or_else(|p| vec![Err(exec::panic_error("cascade::level", p.as_ref()))]);
            let mut built = Vec::new();
            for part in joined {
                built.extend(part?);
            }
            built
        } else {
            exec::failpoint("cascade::level")?;
            let mut built = Vec::with_capacity(level.len());
            for &(set, parent) in &level {
                ctx.checkpoint()?;
                let (arena, merges) = merged_child(
                    &done[&parent],
                    encoder.set_mask(set),
                    encoder.total_bits(),
                    plan,
                    ctx,
                )?;
                built.push((set, arena, merges));
            }
            built
        };

        for (set, arena, merges) in built {
            stats.merge_calls += merges;
            done.insert(set, arena);
            order.push(set);
        }
    }

    Ok(lattice
        .sets()
        .iter()
        // cube-lint: allow(panic, the cascade above materializes each lattice set exactly once)
        .map(|s| (*s, done.remove(s).expect("every set materialized")))
        .collect())
}

/// Morsel-driven parallel aggregation: `threads` workers pull morsels from
/// one atomic row cursor — load balance is automatic at adversarial skews
/// (a worker bogged down in a collision-heavy range simply pulls fewer
/// morsels). Partition arenas coalesce by adopting first-seen cells (POD
/// copy, no merge counted) and merging collisions, then the cascade runs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel(
    enc: &EncodedInput,
    plan: KernelPlan,
    n_rows: usize,
    lattice: &Lattice,
    threads: usize,
    opts: PathOpts,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<KernelSets> {
    stats.vectorized_kernels_used = stats.vectorized_kernels_used.max(plan.lanes.len() as u64);
    let threads = threads.max(1).min(n_rows.max(1));
    stats.threads_used = stats.threads_used.max(threads as u32);

    let mut plan = plan;
    let use_rle = rle_engages(opts.rle, enc, n_rows);
    if use_rle {
        plan.attach_rle();
    } else if radix_engages(opts.radix, enc, n_rows) {
        // Radix grouping is itself a parallel core build — partitions are
        // aggregated without any shared map or coalesce pass.
        let core = radix_core(enc, &plan, n_rows, threads, stats, ctx)?;
        let sets = cascade(
            core,
            &enc.encoder,
            &plan,
            lattice,
            ParentChoice::SmallestCardinality,
            stats,
            ctx,
        )?;
        return Ok(KernelSets {
            sets,
            plan,
            encoder: enc.encoder.clone(),
        });
    }

    let cursor = AtomicUsize::new(0);
    // Each worker reports its local stats alongside the result so that a
    // budget trip mid-morsel still surfaces the scan progress made before
    // the trip in the error's partial [`ExecStats`].
    type WorkerOutcome = (CubeResult<KernelArena>, ExecStats);
    let partials: Vec<WorkerOutcome> = {
        let plan = &plan;
        crossbeam::thread::scope(|scope| {
            let cursor_ref = &cursor;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move |_| -> WorkerOutcome {
                        let mut local = ExecStats::default();
                        if let Err(e) = exec::failpoint("parallel::worker") {
                            return (Err(e), local);
                        }
                        let mut arena = KernelArena::sized_for(
                            plan.lanes.len(),
                            enc.encoder.total_bits(),
                            n_rows / threads + 1,
                        );
                        let fused = plan.fused_ints();
                        let mut slot_buf = Vec::with_capacity(MORSEL_ROWS);
                        loop {
                            // cube-lint: allow(atomic, morsel work-claim counter: each claimed range is consumed only by the claiming thread, over data made visible by the scoped spawn)
                            let base = cursor_ref.fetch_add(MORSEL_ROWS, Ordering::Relaxed);
                            if base >= n_rows {
                                break;
                            }
                            let end = (base + MORSEL_ROWS).min(n_rows);
                            let scanned = if use_rle {
                                scan_morsel_rle(&mut arena, enc, plan, base, end, &mut local, ctx)
                            } else {
                                scan_morsel(
                                    &mut arena,
                                    enc,
                                    plan,
                                    fused.as_ref(),
                                    &mut slot_buf,
                                    base,
                                    end,
                                    &mut local,
                                    ctx,
                                )
                            };
                            if let Err(e) = scanned {
                                return (Err(e), local);
                            }
                        }
                        (Ok(arena), local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        (
                            Err(exec::panic_error("parallel::worker", p.as_ref())),
                            ExecStats::default(),
                        )
                    })
                })
                .collect()
        })
        .unwrap_or_else(|p| {
            vec![(
                Err(exec::panic_error("parallel::worker", p.as_ref())),
                ExecStats::default(),
            )]
        })
    };

    let n = plan.lanes.len();
    let mut core = KernelArena::sized_for(n, enc.encoder.total_bits(), n_rows);
    // Fold every worker's stats in before propagating the first error —
    // the whole point of reporting them separately.
    let mut failed = None;
    let mut arenas = Vec::with_capacity(partials.len());
    for (result, local) in partials {
        stats.add(&local);
        match result {
            Ok(arena) => arenas.push(arena),
            Err(e) => failed = failed.or(Some(e)),
        }
    }
    if let Some(e) = failed {
        return Err(e);
    }
    for partial in arenas {
        for (pslot, &key) in partial.keys.iter().enumerate() {
            let pbase = pslot * n;
            let (cslot, fresh) = core.entry_uncharged(key);
            if fresh {
                // First worker to produce this cell: adopt the POD lanes
                // outright — no Init, no merge. Cells were charged by the
                // worker that created them.
                core.cells
                    .extend_from_slice(&partial.cells[pbase..pbase + n]);
            } else {
                let cbase = cslot as usize * n;
                for (l, lane) in plan.lanes.iter().enumerate() {
                    let src = partial.cells[pbase + l];
                    lane.kernel
                        // cube-lint: allow(guard, engine-owned POD kernel, runs no user code)
                        .merge(&mut core.cells[cbase + l], &src, lane.float_input());
                    stats.merge_calls += 1;
                }
            }
        }
    }

    let sets = cascade(
        core,
        &enc.encoder,
        &plan,
        lattice,
        ParentChoice::SmallestCardinality,
        stats,
        ctx,
    )?;
    Ok(KernelSets {
        sets,
        plan,
        encoder: enc.encoder.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::spec::{AggSpec, BoundDimension, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table, Value};

    fn setup() -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
            ("price", DataType::Float),
        ]);
        let mut t = Table::empty(schema);
        for (m, y, u, p) in [
            ("Chevy", 1994, 50, 1.5),
            ("Chevy", 1995, 85, 2.25),
            ("Ford", 1994, 50, 0.5),
            ("Ford", 1995, 75, 4.0),
        ] {
            t.push(row![m, y, u, p]).unwrap();
        }
        t.push(Row::new(vec![
            Value::str("Ford"),
            Value::Int(1994),
            Value::Null,
            Value::Null,
        ]))
        .unwrap();
        let dims = ["model", "year"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![
            AggSpec::new(builtin("SUM").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("AVG").unwrap(), "price")
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("COUNT").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
            AggSpec::star(builtin("COUNT(*)").unwrap())
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("MIN").unwrap(), "price")
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("MAX").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
        ];
        (t, dims, aggs)
    }

    #[allow(clippy::type_complexity)]
    fn finals(maps: SetMaps) -> Vec<(GroupingSet, Vec<(Row, Vec<Value>)>)> {
        maps.into_iter()
            .map(|(s, m)| {
                let mut cells: Vec<(Row, Vec<Value>)> = m
                    .into_iter()
                    .map(|(k, a)| (k, a.iter().map(|x| x.final_value()).collect()))
                    .collect();
                cells.sort();
                (s, cells)
            })
            .collect()
    }

    #[test]
    fn plan_compiles_builtins_and_rejects_the_rest() {
        let (t, _, aggs) = setup();
        let plan = plan(t.rows(), &aggs).expect("all six built-ins kernelize");
        assert_eq!(plan.lanes.len(), 6);

        // A holistic aggregate anywhere sends the whole query to the row
        // path.
        let with_median = vec![AggSpec::new(builtin("MEDIAN").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        assert!(super::plan(t.rows(), &with_median).is_none());

        // A string measure cannot extract as a primitive column.
        let on_str = vec![AggSpec::new(builtin("MIN").unwrap(), "model")
            .bind(t.schema())
            .unwrap()];
        assert!(super::plan(t.rows(), &on_str).is_none());
    }

    #[test]
    fn vectorized_from_core_matches_arena_path() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(2).unwrap();
        let enc = encode(t.rows(), &dims).unwrap();
        let ctx = ExecContext::unlimited();

        let mut sv = ExecStats::default();
        let v = from_core(
            &enc,
            plan(t.rows(), &aggs).unwrap(),
            t.rows().len(),
            &lattice,
            ParentChoice::SmallestCardinality,
            PathOpts::new(true, true),
            &mut sv,
            &ctx,
        )
        .unwrap()
        .into_set_maps(&aggs)
        .unwrap();

        let mut sa = ExecStats::default();
        let a = super::super::encoded::from_core(
            &enc,
            t.rows(),
            &aggs,
            &lattice,
            ParentChoice::SmallestCardinality,
            &mut sa,
            &ctx,
        )
        .unwrap();

        assert_eq!(finals(v), finals(a));
        // Work counters agree wherever the work is the same.
        assert_eq!(sv.rows_scanned, sa.rows_scanned);
        assert_eq!(sv.iter_calls, sa.iter_calls);
        assert_eq!(sv.merge_calls, sa.merge_calls);
        assert_eq!(sv.vectorized_kernels_used, 6);
        assert!(sv.morsels_processed > 0);
    }

    #[test]
    fn vectorized_parallel_matches_serial() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(2).unwrap();
        let enc = encode(t.rows(), &dims).unwrap();
        let ctx = ExecContext::unlimited();

        let expected = finals(
            from_core(
                &enc,
                plan(t.rows(), &aggs).unwrap(),
                t.rows().len(),
                &lattice,
                ParentChoice::SmallestCardinality,
                PathOpts::new(true, true),
                &mut ExecStats::default(),
                &ctx,
            )
            .unwrap()
            .into_set_maps(&aggs)
            .unwrap(),
        );
        for threads in [1, 4] {
            let mut sp = ExecStats::default();
            let par = parallel(
                &enc,
                plan(t.rows(), &aggs).unwrap(),
                t.rows().len(),
                &lattice,
                threads,
                PathOpts::new(true, true),
                &mut sp,
                &ctx,
            )
            .unwrap()
            .into_set_maps(&aggs)
            .unwrap();
            assert_eq!(sp.threads_used, threads as u32);
            assert_eq!(finals(par), expected, "{threads} threads");
        }
    }
}
