//! The 2^N algorithm (§5).
//!
//! "The simplest algorithm to compute the cube is to allocate a handle for
//! each cube cell. When a new tuple (x1, x2, ..., xN, v) arrives, the
//! Iter(handle, v) function is called 2^N times — once for each handle of
//! each cell of the cube matching this value." This is the only algorithm
//! that works for holistic aggregates, and the cost baseline every other
//! algorithm is measured against: `T × |sets| × |aggs|` Iter() calls in a
//! single scan.

use crate::error::CubeResult;
use crate::exec::{self, ExecContext};
use crate::groupby::{full_key, project_key, update_cell, ExecStats, GroupMap, SetMaps};
use crate::lattice::Lattice;
use crate::spec::{BoundAgg, BoundDimension};
use dc_relation::Row;

pub(crate) fn run(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    encoded: bool,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    if encoded {
        if let Some(enc) = crate::encode::encode(rows, dims) {
            stats.encoded_keys = true;
            return super::encoded::naive(&enc, rows, aggs, lattice, stats, ctx);
        }
    }
    run_row_path(rows, dims, aggs, lattice, stats, ctx)
}

/// The `Row`-keyed path: fallback when keys don't pack, and the reference
/// the encoded engine is property-tested against.
pub(crate) fn run_row_path(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    exec::failpoint("naive::scan")?;
    let mut maps: SetMaps = lattice
        .sets()
        .iter()
        .map(|&s| (s, GroupMap::default()))
        .collect();
    for (i, row) in rows.iter().enumerate() {
        ctx.tick(i)?;
        stats.rows_scanned += 1;
        let full = full_key(dims, row);
        for (set, map) in maps.iter_mut() {
            let key = project_key(&full, *set);
            update_cell(map, key, row, aggs, stats, ctx)?;
        }
    }
    Ok(maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::GroupingSet;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table, Value};

    fn setup() -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let t = Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap();
        let dims = vec![
            Dimension::column("model").bind(t.schema()).unwrap(),
            Dimension::column("year").bind(t.schema()).unwrap(),
        ];
        let aggs = vec![AggSpec::new(builtin("SUM").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        (t, dims, aggs)
    }

    #[test]
    fn touches_every_set_per_row() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(2).unwrap();
        let mut stats = ExecStats::default();
        let ctx = ExecContext::unlimited();
        let maps = run(t.rows(), &dims, &aggs, &lattice, &mut stats, true, &ctx).unwrap();
        // T × 2^N × |aggs| = 3 × 4 × 1 Iter calls — the paper's cost formula.
        assert_eq!(stats.iter_calls, 12);
        assert_eq!(stats.rows_scanned, 3);
        // Grand total cell.
        let (_, empty_map) = maps.iter().find(|(s, _)| *s == GroupingSet::EMPTY).unwrap();
        let key = Row::new(vec![Value::All, Value::All]);
        assert_eq!(empty_map[&key][0].final_value(), Value::Int(195));
    }
}
