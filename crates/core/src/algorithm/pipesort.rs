//! PipeSort-style cube computation (the paper's \[ADGNRS\] reference:
//! Agrawal et al., "On the Computation of Multidimensional Aggregates").
//!
//! A sorted scan over dimension order (d₁, d₂, ..., dₙ) computes every
//! *prefix* grouping set of that order in one pass — a whole chain of the
//! lattice per sort. The full cube is 2^N sets, but by **Dilworth's
//! theorem** the boolean lattice decomposes into just C(N, ⌊N/2⌋) chains
//! of nested sets (the de Bruijn–Tengbergen–Kruyswijk *symmetric chain
//! decomposition*), and every chain of nested sets embeds into the prefix
//! chain of some dimension permutation. So the cube costs
//! C(N, ⌊N/2⌋) sorted scans instead of 2^N group-bys: 6 pipelines instead
//! of 16 sets at N = 4, 20 instead of 64 at N = 6.
//!
//! This is the "share sorts across grouping sets" idea of PipeSort in its
//! cleanest form (the original also weighs sort vs. scan costs per edge;
//! we take the combinatorial core).

use crate::error::{CubeError, CubeResult};
use crate::exec::{self, ExecContext};
use crate::groupby::{full_key, ExecStats, GroupMap, SetMaps};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::{BoundAgg, BoundDimension};
use dc_aggregate::Accumulator;
use dc_relation::{Row, Value};
use std::cmp::Ordering;

/// One open pipeline frame: the current permuted prefix plus scratchpads.
type PipeFrame = Option<(Vec<Value>, Vec<Box<dyn Accumulator>>)>;

/// The de Bruijn–Tengbergen–Kruyswijk symmetric chain decomposition of
/// the n-dimensional boolean lattice: every subset appears in exactly one
/// chain, each chain is nested with consecutive sizes, and the number of
/// chains is C(n, ⌊n/2⌋) — the lattice's maximum antichain, so no cover
/// can be smaller.
pub fn symmetric_chains(n: usize) -> Vec<Vec<GroupingSet>> {
    if n == 0 {
        return vec![vec![GroupingSet::EMPTY]];
    }
    let smaller = symmetric_chains(n - 1);
    let new_dim = n - 1;
    let mut chains = Vec::new();
    for chain in smaller {
        let k = chain.len();
        // Extended chain: c1 ⊂ ... ⊂ ck ⊂ ck ∪ {new}.
        let mut extended = chain.clone();
        extended.push(chain[k - 1].with(new_dim));
        chains.push(extended);
        // Lifted chain: c1 ∪ {new} ⊂ ... ⊂ c(k-1) ∪ {new}.
        if k > 1 {
            chains.push(chain[..k - 1].iter().map(|c| c.with(new_dim)).collect());
        }
    }
    chains
}

/// A dimension permutation whose prefixes visit every set of `chain`
/// (chains are nested with consecutive sizes, so the order is: the
/// smallest set's dims, then each step's added dim, then the leftovers).
fn chain_order(chain: &[GroupingSet], n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = chain[0].dims();
    for w in chain.windows(2) {
        let added = w[1].bits() & !w[0].bits();
        debug_assert_eq!(added.count_ones(), 1, "chains grow one dim at a time");
        order.push(added.trailing_zeros() as usize);
    }
    for d in 0..n {
        if !order.contains(&d) {
            order.push(d);
        }
    }
    order
}

pub(crate) fn run(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    let n = lattice.n_dims();
    if !lattice.is_full_cube() {
        return Err(CubeError::Unsupported(
            "PipeSort computes full cubes only".into(),
        ));
    }

    // Evaluate the full coordinate of every row once.
    let keyed: Vec<(Row, &Row)> = rows
        .iter()
        .map(|r| {
            stats.rows_scanned += 1;
            (full_key(dims, r), r)
        })
        .collect();

    let mut maps: SetMaps = lattice
        .sets()
        .iter()
        .map(|&s| (s, GroupMap::default()))
        .collect();

    for chain in symmetric_chains(n) {
        exec::failpoint("pipesort::pipeline")?;
        ctx.checkpoint()?;
        let order = chain_order(&chain, n);
        pipeline(&keyed, aggs, n, &order, &chain, &mut maps, stats, ctx)?;
    }
    Ok(maps)
}

/// One pipeline: sort by `order`, scan once, emit the chain's sets.
#[allow(clippy::too_many_arguments)]
fn pipeline(
    keyed: &[(Row, &Row)],
    aggs: &[BoundAgg],
    n: usize,
    order: &[usize],
    chain: &[GroupingSet],
    maps: &mut SetMaps,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<()> {
    // Sort row indices by the permuted key (each pipeline pays one sort —
    // the PipeSort cost unit).
    let mut idx: Vec<usize> = (0..keyed.len()).collect();
    let cmp_perm = |a: &Row, b: &Row| -> Ordering {
        for &d in order {
            match a[d].cmp(&b[d]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    };
    idx.sort_by(|&a, &b| cmp_perm(&keyed[a].0, &keyed[b].0));
    stats.sorts += 1;

    // Which prefix lengths (in permutation order) must be emitted, and
    // into which grouping set.
    let emit_levels: Vec<(usize, GroupingSet)> = chain.iter().map(|&s| (s.len(), s)).collect();
    let min_level = emit_levels.iter().map(|(l, _)| *l).min().unwrap_or(0);
    let max_level = emit_levels.iter().map(|(l, _)| *l).max().unwrap_or(0);

    // Frames for prefix lengths min..=max; each row feeds only the
    // deepest, parents are fed by scratchpad merges on close.
    let mut frames: Vec<PipeFrame> = (0..=max_level).map(|_| None).collect();

    let emit =
        |prefix: &[Value], accs: Vec<Box<dyn Accumulator>>, level: usize, maps: &mut SetMaps| {
            if let Some((_, set)) = emit_levels.iter().find(|(l, _)| *l == level) {
                // Reassemble the key in ORIGINAL dimension order.
                let mut key_vals = vec![Value::All; n];
                for (pos, &d) in order.iter().enumerate().take(level) {
                    key_vals[d] = prefix[pos].clone();
                }
                let (_, map) = maps
                    .iter_mut()
                    .find(|(s, _)| s == set)
                    // cube-lint: allow(panic, pipelines are built from this lattice's own chains)
                    .expect("chain set is in the lattice");
                map.insert(Row::new(key_vals), accs);
            }
        };

    let close = |frames: &mut Vec<PipeFrame>,
                 maps: &mut SetMaps,
                 level: usize,
                 stats: &mut ExecStats|
     -> CubeResult<()> {
        if let Some((prefix, accs)) = frames[level].take() {
            if level > min_level {
                if frames[level - 1].is_none() {
                    ctx.charge_cells(1)?;
                    let parent_prefix = prefix[..level - 1].to_vec();
                    frames[level - 1] = Some((parent_prefix, exec::guarded_init(aggs)?));
                }
                // cube-lint: allow(panic, opened by the is_none branch just above)
                let (_, paccs) = frames[level - 1].as_mut().expect("parent frame open");
                for ((p, c), agg) in paccs.iter_mut().zip(accs.iter()).zip(aggs.iter()) {
                    exec::guard(agg.func.name(), || p.merge(&c.state()))?;
                    stats.merge_calls += 1;
                }
            }
            emit(&prefix, accs, level, maps);
        }
        Ok(())
    };

    for (t, &i) in idx.iter().enumerate() {
        ctx.tick(t)?;
        let (key, row) = &keyed[i];
        let perm_key: Vec<Value> = order[..max_level].iter().map(|&d| key[d].clone()).collect();
        let open = frames[max_level].as_ref().map(|(p, _)| p.clone());
        let diverge = match &open {
            None => 0,
            Some(p) => p
                .iter()
                .zip(perm_key.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(max_level),
        };
        if open.is_some() {
            // Close every frame whose prefix changed (length > diverge),
            // down to the shallowest frame this pipeline keeps.
            for level in ((diverge + 1).max(min_level)..=max_level).rev() {
                close(&mut frames, maps, level, stats)?;
            }
        }
        for (level, frame) in frames.iter_mut().enumerate().skip(min_level.max(1)) {
            if frame.is_none() {
                ctx.charge_cells(1)?;
                *frame = Some((perm_key[..level].to_vec(), exec::guarded_init(aggs)?));
            }
        }
        if min_level == 0 && frames[0].is_none() {
            ctx.charge_cells(1)?;
            frames[0] = Some((Vec::new(), exec::guarded_init(aggs)?));
        }
        // cube-lint: allow(panic, the open loop above re-opens every closed frame)
        let (_, accs) = frames[max_level].as_mut().expect("deepest frame open");
        for (acc, agg) in accs.iter_mut().zip(aggs.iter()) {
            exec::guard(agg.func.name(), || acc.iter(agg.input_value(row)))?;
            stats.iter_calls += 1;
        }
    }
    if !keyed.is_empty() {
        for level in (min_level..=max_level).rev() {
            close(&mut frames, maps, level, stats)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::naive;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table};

    fn binomial(n: usize, k: usize) -> usize {
        (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn scd_covers_every_set_exactly_once() {
        for n in 0..=8 {
            let chains = symmetric_chains(n);
            // Chain count = C(n, n/2), Dilworth's bound.
            assert_eq!(chains.len(), binomial(n, n / 2), "chain count at n={n}");
            let mut seen = std::collections::HashSet::new();
            for chain in &chains {
                // Nested, consecutive sizes.
                for w in chain.windows(2) {
                    assert!(w[0].subset_of(w[1]));
                    assert_eq!(w[0].len() + 1, w[1].len());
                }
                // Symmetric: sizes (k, n-k) around the middle.
                let lo = chain.first().unwrap().len();
                let hi = chain.last().unwrap().len();
                assert_eq!(lo + hi, n, "symmetric chain at n={n}");
                for s in chain {
                    assert!(seen.insert(*s), "set {s} in two chains");
                }
            }
            assert_eq!(seen.len(), 1 << n, "all sets covered at n={n}");
        }
    }

    #[test]
    fn chain_order_makes_prefixes() {
        let chains = symmetric_chains(4);
        for chain in &chains {
            let order = chain_order(chain, 4);
            // order is a permutation.
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            // Every chain set is a prefix of the order.
            for s in chain {
                let prefix = GroupingSet::from_dims(&order[..s.len()]).unwrap();
                assert_eq!(prefix, *s);
            }
        }
    }

    fn setup() -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
            ("d", DataType::Int),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..200i64 {
            t.push(row![i % 3, (i * 7) % 4, (i * 13) % 2, (i * 5) % 5, i % 50])
                .unwrap();
        }
        let dims = ["a", "b", "c", "d"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![AggSpec::new(builtin("SUM").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        (t, dims, aggs)
    }

    #[test]
    fn pipesort_matches_naive_on_4d() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(4).unwrap();
        let ctx = ExecContext::unlimited();
        let mut s1 = ExecStats::default();
        let pipe = run(t.rows(), &dims, &aggs, &lattice, &mut s1, &ctx).unwrap();
        let reference = naive::run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            true,
            &ctx,
        )
        .unwrap();
        for (set, map) in &reference {
            let (_, pmap) = pipe.iter().find(|(s, _)| s == set).unwrap();
            assert_eq!(pmap.len(), map.len(), "cells of {set}");
            for (k, accs) in map {
                assert_eq!(pmap[k][0].final_value(), accs[0].final_value(), "{set} {k}");
            }
        }
        // C(4,2) = 6 sorts for 16 grouping sets.
        assert_eq!(s1.sorts, 6);
    }

    #[test]
    fn pipesort_rejects_partial_lattices() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::rollup(4).unwrap();
        assert!(matches!(
            run(
                t.rows(),
                &dims,
                &aggs,
                &lattice,
                &mut ExecStats::default(),
                &ExecContext::unlimited()
            ),
            Err(CubeError::Unsupported(_))
        ));
    }

    #[test]
    fn pipesort_empty_input() {
        let (t, dims, aggs) = setup();
        let empty = Table::empty(t.schema().clone());
        let lattice = Lattice::cube(4).unwrap();
        let maps = run(
            empty.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            &ExecContext::unlimited(),
        )
        .unwrap();
        assert!(maps.iter().all(|(_, m)| m.is_empty()));
    }
}
