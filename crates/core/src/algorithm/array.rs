//! Dense N-dimensional array cube (§5).
//!
//! "If possible, use arrays ... to organize the aggregation columns in
//! memory" and, via the hashed symbol table, "the values become dense and
//! the aggregates can be stored as an N-dimensional array." Each dimension
//! i gets `C_i + 1` slots — the extra slot is `ALL` — so the array holds
//! exactly the paper's `Π(C_i + 1)` cube cells. The core is aggregated
//! into the array in one scan; super-aggregates are then produced by
//! sweeping one dimension at a time into its ALL slab ("the N-1
//! dimensional slabs can be computed by projecting (aggregating) one
//! dimension of the core").
//!
//! Full-cube lattices only; sparse cores waste array cells, which is the
//! trade-off benchmark C7 measures against the hash-based algorithms.

use crate::error::{CubeError, CubeResult, Resource};
use crate::exec::{self, ExecContext};
use crate::groupby::{ExecStats, GroupMap, SetMaps};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::{BoundAgg, BoundDimension};
use dc_aggregate::Accumulator;
use dc_relation::{Row, SymbolTable, Value};

/// Upper bound on array cells (accumulator slots = cells × aggregates).
/// Beyond this the dense representation stops paying for itself; callers
/// get an error and should use a hash-based algorithm instead.
pub const MAX_CELLS: usize = 1 << 22;

pub(crate) fn run(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    let n = lattice.n_dims();
    if !lattice.is_full_cube() {
        return Err(CubeError::Unsupported(
            "the dense array algorithm computes full cubes only".into(),
        ));
    }

    // Pass 1: evaluate keys and build per-dimension symbol tables.
    let mut symbols: Vec<SymbolTable> = (0..n).map(|_| SymbolTable::new()).collect();
    let mut coded: Vec<Vec<u32>> = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        ctx.tick(i)?;
        stats.rows_scanned += 1;
        let code: Vec<u32> = dims
            .iter()
            .zip(symbols.iter_mut())
            .map(|(d, t)| t.intern(&d.eval(row)))
            .collect();
        coded.push(code);
    }

    // Array geometry: dimension i has C_i real slots plus slot C_i = ALL.
    let sizes: Vec<usize> = symbols.iter().map(|t| t.cardinality() + 1).collect();
    // Projected size is checked up front — the array never materializes
    // over-budget, and the dispatcher can degrade to a sparse algorithm on
    // this error knowing nothing was charged to the shared cell counter.
    let effective = (MAX_CELLS as u64).min(ctx.cell_budget().unwrap_or(u64::MAX));
    let mut cells: usize = 1;
    for &s in &sizes {
        cells = cells.saturating_mul(s);
        if cells as u64 > effective {
            return Err(CubeError::ResourceExhausted {
                resource: Resource::Cells,
                limit: effective,
                observed: cells as u64,
                stats: ExecStats::default(),
            });
        }
    }
    let mut strides = vec![1usize; n];
    for d in (0..n.saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * sizes[d + 1];
    }

    let mut array: Vec<Option<Vec<Box<dyn Accumulator>>>> =
        std::iter::repeat_with(|| None).take(cells.max(1)).collect();

    // Pass 2: aggregate base rows into core cells.
    for (i, (code, row)) in coded.iter().zip(rows.iter()).enumerate() {
        ctx.tick(i)?;
        let idx: usize = code
            .iter()
            .zip(strides.iter())
            .map(|(&c, &s)| c as usize * s)
            .sum();
        if array[idx].is_none() {
            array[idx] = Some(exec::guarded_init(aggs)?);
        }
        // cube-lint: allow(panic, slot was filled by guarded_init on the line above)
        let accs = array[idx].as_mut().expect("cell just initialized");
        for (acc, agg) in accs.iter_mut().zip(aggs.iter()) {
            exec::guard(agg.func.name(), || acc.iter(agg.input_value(row)))?;
            stats.iter_calls += 1;
        }
    }

    // Sweep each dimension into its ALL slab. After dimension d's sweep,
    // every cell with digit d = ALL holds the aggregate over that
    // dimension; sweeping dimensions in sequence populates all 2^N
    // combinations.
    exec::failpoint("array::sweep")?;
    for d in 0..n {
        let all_digit = sizes[d] - 1;
        for idx in 0..cells {
            ctx.tick(idx)?;
            let digit = (idx / strides[d]) % sizes[d];
            if digit == all_digit || array[idx].is_none() {
                continue;
            }
            let target = idx + (all_digit - digit) * strides[d];
            // Take the source states first to satisfy the borrow checker.
            let mut states: Vec<Vec<Value>> = Vec::with_capacity(aggs.len());
            // cube-lint: allow(panic, outer loop only visits occupied source cells)
            for (a, agg) in array[idx].as_ref().unwrap().iter().zip(aggs.iter()) {
                states.push(exec::guard(agg.func.name(), || a.state())?);
            }
            if array[target].is_none() {
                array[target] = Some(exec::guarded_init(aggs)?);
            }
            // cube-lint: allow(panic, slot was filled by guarded_init on the line above)
            let taccs = array[target].as_mut().expect("slab just initialized");
            for ((t, s), agg) in taccs.iter_mut().zip(states.iter()).zip(aggs.iter()) {
                exec::guard(agg.func.name(), || t.merge(s))?;
                stats.merge_calls += 1;
            }
        }
    }

    // Decode the array into per-set hash maps.
    let mut maps: SetMaps = lattice
        .sets()
        .iter()
        .map(|&s| (s, GroupMap::default()))
        .collect();
    for (idx, slot) in array.into_iter().enumerate() {
        let Some(accs) = slot else { continue };
        let mut key_vals = Vec::with_capacity(n);
        let mut mask = GroupingSet::EMPTY;
        for d in 0..n {
            let digit = (idx / strides[d]) % sizes[d];
            if digit == sizes[d] - 1 {
                key_vals.push(Value::All);
            } else {
                key_vals.push(
                    symbols[d]
                        .decode(digit as u32)
                        // cube-lint: allow(panic, digits below all_digit came from this symbol table)
                        .expect("digit interned")
                        .clone(),
                );
                mask = mask.with(d);
            }
        }
        let (_, map) = maps
            .iter_mut()
            .find(|(s, _)| *s == mask)
            // cube-lint: allow(panic, maps was built with one entry per cube mask)
            .expect("full cube contains every mask");
        map.insert(Row::new(key_vals), accs);
    }
    Ok(maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::naive;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table};

    fn setup() -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        for (m, y, u) in [
            ("Chevy", 1994, 50),
            ("Chevy", 1995, 85),
            ("Ford", 1994, 60),
            ("Ford", 1995, 160),
            ("Chevy", 1994, 40),
        ] {
            t.push(row![m, y, u]).unwrap();
        }
        let dims = ["model", "year"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![AggSpec::new(builtin("SUM").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        (t, dims, aggs)
    }

    #[test]
    fn matches_naive() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(2).unwrap();
        let ctx = ExecContext::unlimited();
        let a = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            &ctx,
        )
        .unwrap();
        let b = naive::run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            true,
            &ctx,
        )
        .unwrap();
        for (set, map) in &b {
            let (_, amap) = a.iter().find(|(s, _)| s == set).unwrap();
            assert_eq!(amap.len(), map.len(), "cells of {set}");
            for (k, accs) in map {
                assert_eq!(amap[k][0].final_value(), accs[0].final_value(), "{k}");
            }
        }
    }

    #[test]
    fn grand_total_in_the_all_corner() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(2).unwrap();
        let maps = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            &ExecContext::unlimited(),
        )
        .unwrap();
        let (_, grand) = maps.iter().find(|(s, _)| s.is_empty()).unwrap();
        let key = Row::new(vec![Value::All, Value::All]);
        assert_eq!(grand[&key][0].final_value(), Value::Int(395));
    }

    #[test]
    fn rejects_rollup_lattices() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::rollup(2).unwrap();
        assert!(matches!(
            run(
                t.rows(),
                &dims,
                &aggs,
                &lattice,
                &mut ExecStats::default(),
                &ExecContext::unlimited(),
            ),
            Err(CubeError::Unsupported(_))
        ));
    }

    #[test]
    fn sparse_cells_stay_unmaterialized() {
        // Only the non-null elements of the core and super-aggregates are
        // represented (§5's sparse-cube note): a (model, year) pair never
        // seen produces no cell.
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let t = Table::new(schema, vec![row!["Chevy", 1994, 1], row!["Ford", 1995, 2]]).unwrap();
        let dims: Vec<BoundDimension> = ["model", "year"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![AggSpec::new(builtin("SUM").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        let lattice = Lattice::cube(2).unwrap();
        let maps = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            &ExecContext::unlimited(),
        )
        .unwrap();
        let (_, core) = maps.iter().find(|(s, _)| s.len() == 2).unwrap();
        assert_eq!(core.len(), 2); // not 4
    }
}
