//! The union-of-GROUP-BYs plan (§2).
//!
//! "A six dimension cross-tab requires a 64-way union of 64 different
//! GROUP BY operators ... On most SQL systems this will result in 64 scans
//! of the data, 64 sorts or hashes, and a long wait." This module
//! materializes exactly that plan — one independent GROUP BY scan per
//! grouping set — so the benchmarks can measure what the CUBE operator
//! saves over the hand-written query.

use crate::error::CubeResult;
use crate::exec::{self, ExecContext};
use crate::groupby::{full_key, project_key, update_cell, ExecStats, GroupMap, SetMaps};
use crate::lattice::Lattice;
use crate::spec::{BoundAgg, BoundDimension};
use dc_relation::Row;

pub(crate) fn run(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    encoded: bool,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    if encoded {
        if let Some(enc) = crate::encode::encode(rows, dims) {
            stats.encoded_keys = true;
            return super::encoded::unions(&enc, rows, aggs, lattice, stats, ctx);
        }
    }
    run_row_path(rows, dims, aggs, lattice, stats, ctx)
}

/// The `Row`-keyed path: fallback when keys don't pack, and the reference
/// the encoded engine is property-tested against.
pub(crate) fn run_row_path(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    exec::failpoint("unions::scan")?;
    let mut maps = SetMaps::with_capacity(lattice.sets().len());
    for &set in lattice.sets() {
        // One full scan per grouping set — the cost §2 complains about.
        let mut map = GroupMap::default();
        for (i, row) in rows.iter().enumerate() {
            ctx.tick(i)?;
            stats.rows_scanned += 1;
            let key = project_key(&full_key(dims, row), set);
            update_cell(&mut map, key, row, aggs, stats, ctx)?;
        }
        maps.push((set, map));
    }
    Ok(maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table};

    #[test]
    fn one_scan_per_grouping_set() {
        let schema = Schema::from_pairs(&[("model", DataType::Str), ("units", DataType::Int)]);
        let t = Table::new(schema, vec![row!["Chevy", 50], row!["Ford", 60]]).unwrap();
        let dims = vec![Dimension::column("model").bind(t.schema()).unwrap()];
        let aggs = vec![AggSpec::new(builtin("SUM").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        let lattice = Lattice::cube(1).unwrap();
        let mut stats = ExecStats::default();
        run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut stats,
            true,
            &ExecContext::unlimited(),
        )
        .unwrap();
        // 2 sets × 2 rows: each set re-scans the base table.
        assert_eq!(stats.rows_scanned, 4);
    }
}
