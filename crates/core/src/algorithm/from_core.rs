//! Computing super-aggregates from the core GROUP BY (§5, Figure 8).
//!
//! "It is often faster to compute the super-aggregates from the core
//! GROUP BY, reducing the number of calls by approximately a factor of T."
//! One scan computes the core cells; every other grouping set is then
//! produced by folding a *parent* set's scratchpads (the paper's
//! `Iter_super` call) — never touching base rows again. Parent selection
//! follows the paper's rule: drop the dimension with the smallest
//! cardinality ("pick the * with the smallest Cᵢ").
//!
//! This works for distributive and algebraic aggregates because their
//! scratchpads are closed under merging; holistic aggregates technically
//! merge here too (their scratchpad is the whole multiset) but gain
//! nothing — `Algorithm::Auto` routes them to the 2^N algorithm instead,
//! and benchmark C10 shows why.

use super::PathOpts;
use crate::error::CubeResult;
use crate::exec::{self, ExecContext};
use crate::groupby::{
    compute_core, core_cardinalities, project_key, ExecStats, GroupMap, Grouped, SetMaps,
};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::{BoundAgg, BoundDimension};
use dc_relation::Row;
use std::collections::HashMap;

/// How the cascade picks each set's parent — ablated by benchmark C6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParentChoice {
    /// The paper's rule: aggregate away the smallest-cardinality dimension.
    SmallestCardinality,
    /// Adversarial ablation: aggregate away the largest-cardinality
    /// dimension.
    LargestCardinality,
    /// Always cascade directly from the core (no intermediate reuse).
    AlwaysCore,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    opts: PathOpts,
    ctx: &ExecContext,
) -> CubeResult<Grouped> {
    run_with_choice(
        rows,
        dims,
        aggs,
        lattice,
        ParentChoice::SmallestCardinality,
        stats,
        opts,
        ctx,
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_with_choice(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    choice: ParentChoice,
    stats: &mut ExecStats,
    opts: PathOpts,
    ctx: &ExecContext,
) -> CubeResult<Grouped> {
    if opts.encoded {
        if let Some(enc) = crate::encode::encode(rows, dims) {
            stats.encoded_keys = true;
            if let Some(budget) = ctx.cell_budget() {
                let projected = projected_lattice_cells(&enc.encoder.cardinalities(), lattice);
                if projected > budget {
                    // Degradation rung 2: the cascade would hold the whole
                    // lattice's cells live at once. Stream one grouping
                    // set at a time instead — only cells that actually
                    // exist are charged, so a sparse cube whose §3
                    // estimate is pessimistic still completes; a genuinely
                    // dense one trips the budget mid-scan.
                    stats.degraded_to_streaming = true;
                    return super::encoded::unions(&enc, rows, aggs, lattice, stats, ctx)
                        .map(Grouped::Rows);
                }
            }
            if opts.vectorize {
                if let Some(plan) = super::vectorized::plan(rows, aggs) {
                    return super::vectorized::from_core(
                        &enc,
                        plan,
                        rows.len(),
                        lattice,
                        choice,
                        opts,
                        stats,
                        ctx,
                    )
                    .map(Grouped::Kernels);
                }
            }
            return super::encoded::from_core(&enc, rows, aggs, lattice, choice, stats, ctx)
                .map(Grouped::Rows);
        }
    }
    run_with_choice_row_path(rows, dims, aggs, lattice, choice, stats, ctx).map(Grouped::Rows)
}

/// §3's size estimate summed over the lattice: each grouping set projects
/// to `Π C_d` over its member dimensions (an `ALL` coordinate contributes
/// a factor of 1). Saturating: an overflowing estimate is "too big".
pub(crate) fn projected_lattice_cells(cardinalities: &[usize], lattice: &Lattice) -> u64 {
    let mut total = 0u64;
    for set in lattice.sets() {
        let mut cells = 1u64;
        for (d, &c) in cardinalities.iter().enumerate() {
            if set.contains(d) {
                cells = cells.saturating_mul(c.max(1) as u64);
            }
        }
        total = total.saturating_add(cells);
    }
    total
}

/// The `Row`-keyed path: fallback when keys don't pack, and the reference
/// the encoded engine is property-tested against.
#[cfg(test)]
pub(crate) fn run_row_path(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    run_with_choice_row_path(
        rows,
        dims,
        aggs,
        lattice,
        ParentChoice::SmallestCardinality,
        stats,
        ctx,
    )
}

pub(crate) fn run_with_choice_row_path(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    choice: ParentChoice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    let core = compute_core(rows, dims, aggs, stats, ctx)?;
    cascade(core, aggs, lattice, choice, stats, ctx)
}

/// The cascade proper: given the core cells, materialize every other
/// grouping set by scratchpad merging. Shared with the parallel algorithm,
/// which builds its core by coalescing per-partition cores first.
pub(crate) fn cascade(
    core: GroupMap,
    aggs: &[BoundAgg],
    lattice: &Lattice,
    choice: ParentChoice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    exec::failpoint("cascade::level")?;
    let core_set = lattice.core();
    let cardinalities = core_cardinalities(&core, lattice.n_dims());

    // Materialized sets, in cascade order (lattice is ordered core-first,
    // decreasing arity, so every set's one-step parents precede it).
    let mut done: HashMap<GroupingSet, GroupMap> = HashMap::new();
    let mut order: Vec<GroupingSet> = Vec::with_capacity(lattice.sets().len());
    done.insert(core_set, core);
    order.push(core_set);

    for &set in lattice.sets() {
        if set == core_set {
            continue;
        }
        let parent = match choice {
            ParentChoice::AlwaysCore => core_set,
            ParentChoice::SmallestCardinality => lattice.choose_parent(set, &cardinalities, &order),
            ParentChoice::LargestCardinality => {
                choose_largest(lattice, set, &cardinalities, &order)
            }
        };
        ctx.checkpoint()?;
        let parent_map = &done[&parent];
        let mut map =
            GroupMap::with_capacity_and_hasher(parent_map.len() / 2 + 1, Default::default());
        for (pkey, paccs) in parent_map {
            let key = project_key(pkey, set);
            let accs = match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    ctx.charge_cells(1)?;
                    e.insert(exec::guarded_init(aggs)?)
                }
            };
            for ((acc, pacc), agg) in accs.iter_mut().zip(paccs.iter()).zip(aggs.iter()) {
                exec::guard(agg.func.name(), || acc.merge(&pacc.state()))?;
                stats.merge_calls += 1;
            }
        }
        done.insert(set, map);
        order.push(set);
    }

    // Emit in lattice order.
    Ok(lattice
        .sets()
        .iter()
        // cube-lint: allow(panic, the cascade above materializes each lattice set exactly once)
        .map(|s| (*s, done.remove(s).expect("every set materialized")))
        .collect())
}

pub(crate) fn choose_largest(
    lattice: &Lattice,
    set: GroupingSet,
    cardinalities: &[usize],
    materialized: &[GroupingSet],
) -> GroupingSet {
    set.parents(lattice.n_dims())
        .into_iter()
        .filter(|p| materialized.contains(p))
        .max_by_key(|p| {
            let added = p.bits() & !set.bits();
            let d = added.trailing_zeros() as usize;
            cardinalities.get(d).copied().unwrap_or(0)
        })
        .unwrap_or_else(|| lattice.core())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::naive;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table, Value};

    fn setup() -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        for (m, y, c, u) in [
            ("Chevy", 1994, "black", 50),
            ("Chevy", 1994, "white", 40),
            ("Chevy", 1995, "black", 85),
            ("Chevy", 1995, "white", 115),
            ("Ford", 1994, "black", 50),
            ("Ford", 1994, "white", 10),
            ("Ford", 1995, "black", 85),
            ("Ford", 1995, "white", 75),
        ] {
            t.push(row![m, y, c, u]).unwrap();
        }
        let dims = ["model", "year", "color"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![AggSpec::new(builtin("SUM").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        (t, dims, aggs)
    }

    // Consumes the maps so keys move instead of cloning per final value.
    fn finals(maps: SetMaps) -> Vec<(GroupingSet, Vec<(Row, Value)>)> {
        maps.into_iter()
            .map(|(s, m)| {
                let mut cells: Vec<(Row, Value)> = m
                    .into_iter()
                    .map(|(k, a)| (k, a[0].final_value()))
                    .collect();
                cells.sort();
                (s, cells)
            })
            .collect()
    }

    #[test]
    fn matches_the_2n_algorithm() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(3).unwrap();
        let ctx = ExecContext::unlimited();
        let mut s1 = ExecStats::default();
        let a = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut s1,
            PathOpts::new(true, true),
            &ctx,
        )
        .unwrap()
        .into_set_maps(&aggs)
        .unwrap();
        let mut s2 = ExecStats::default();
        let b = naive::run(t.rows(), &dims, &aggs, &lattice, &mut s2, true, &ctx).unwrap();
        assert_eq!(finals(a), finals(b));
        // And it does it in ONE scan with T iters, vs T × 2^N — the
        // vectorized kernel path keeps the row path's work accounting.
        assert_eq!(s1.rows_scanned, 8);
        assert_eq!(s1.iter_calls, 8);
        assert!(
            s1.vectorized_kernels_used > 0,
            "SUM over Int units kernelizes"
        );
        assert_eq!(s2.iter_calls, 8 * 8);
    }

    #[test]
    fn parent_choices_agree_on_results() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(3).unwrap();
        let ctx = ExecContext::unlimited();
        let mut base = ExecStats::default();
        let expected = finals(
            run_with_choice(
                t.rows(),
                &dims,
                &aggs,
                &lattice,
                ParentChoice::SmallestCardinality,
                &mut base,
                PathOpts::new(true, true),
                &ctx,
            )
            .unwrap()
            .into_set_maps(&aggs)
            .unwrap(),
        );
        for choice in [ParentChoice::LargestCardinality, ParentChoice::AlwaysCore] {
            let mut stats = ExecStats::default();
            let got = finals(
                run_with_choice(
                    t.rows(),
                    &dims,
                    &aggs,
                    &lattice,
                    choice,
                    &mut stats,
                    PathOpts::new(true, true),
                    &ctx,
                )
                .unwrap()
                .into_set_maps(&aggs)
                .unwrap(),
            );
            assert_eq!(got, expected, "{choice:?} must produce identical cells");
        }
    }

    #[test]
    fn algebraic_cascade_gives_exact_average() {
        // Figure 8's scenario: AVG super-aggregates need the (sum, count)
        // scratchpads, not the averaged results.
        let (t, dims, aggs_sum) = setup();
        let _ = aggs_sum;
        let aggs = vec![AggSpec::new(builtin("AVG").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        let lattice = Lattice::cube(3).unwrap();
        let maps = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            PathOpts::new(true, true),
            &ExecContext::unlimited(),
        )
        .unwrap()
        .into_set_maps(&aggs)
        .unwrap();
        let (_, grand) = maps.iter().find(|(s, _)| s.is_empty()).unwrap();
        let key = Row::new(vec![Value::All, Value::All, Value::All]);
        // Mean of the 8 unit values = 510 / 8.
        assert_eq!(grand[&key][0].final_value(), Value::Float(510.0 / 8.0));
    }

    #[test]
    fn works_on_rollup_lattices() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::rollup(3).unwrap();
        let maps = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            PathOpts::new(true, true),
            &ExecContext::unlimited(),
        )
        .unwrap()
        .into_set_maps(&aggs)
        .unwrap();
        assert_eq!(maps.len(), 4);
        // Each rollup level's sub-totals sum to the grand total.
        for (_, map) in &maps {
            let total: i64 = map
                .values()
                .map(|a| a[0].final_value().as_i64().unwrap())
                .sum();
            assert_eq!(total, 510);
        }
    }
}
