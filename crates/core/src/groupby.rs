//! The GROUP BY execution core (Figure 2: partition, then aggregate).
//!
//! Every cube algorithm is built from the pieces here: hash-partitioned
//! cells of live accumulators (`GroupMap`), key projection onto a
//! grouping set (replacing dropped dimensions with `ALL`), and
//! materialization of cell maps into result [`Table`]s. [`ExecStats`]
//! counts the work each algorithm does — the unit the paper's §5 cost
//! arguments are phrased in (Iter() calls, scans, merges).

use crate::error::CubeResult;
use crate::exec::{self, ExecContext};
use crate::lattice::GroupingSet;
use crate::spec::{BoundAgg, BoundDimension};
use dc_aggregate::Accumulator;
use dc_relation::{ColumnDef, FxHashMap, Row, Schema, Table, Value};

/// How the admission controller (the concurrent-service layer in
/// `dc-sql`) disposed of the query before execution started. Library
/// callers that run `CubeQuery` directly are `Ungoverned`; the service
/// records its verdict here so clients can observe queueing and shedding
/// in the same stats channel as the §5 work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// No admission controller in the path (direct library execution).
    #[default]
    Ungoverned,
    /// Admitted immediately: a slot and a budget share were free.
    Admitted,
    /// Admitted after waiting in the bounded admission queue.
    Queued,
    /// Rejected by load shedding; `ExecStats::retry_after_ms` carries the
    /// controller's backoff hint.
    Shed,
}

/// Work counters for one cube execution; the currency of the paper's cost
/// analysis ("the 2^N-algorithm invokes the Iter() function T × 2^N
/// times").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows scanned (counted once per scan pass).
    pub rows_scanned: u64,
    /// Iter() calls — one per (row, cell, aggregate) touch.
    pub iter_calls: u64,
    /// Iter_super() calls — scratchpad merges in the cascade.
    pub merge_calls: u64,
    /// Final() calls — one per output cell per aggregate.
    pub final_calls: u64,
    /// Sort passes performed (`u32`: at most one per grouping set, and
    /// with the rest of the narrowed fields it keeps `ExecStats` — and so
    /// `CubeError` — within clippy's 128-byte `Result` threshold).
    pub sorts: u32,
    /// Worker threads the parallel paths actually used after clamping to
    /// the partition count (0 for serial algorithms).
    pub threads_used: u32,
    /// Whether the packed-u64 encoded-key engine carried this query
    /// (false under the `Row`-key fallback: >64 key bits or >16 dims).
    pub encoded_keys: bool,
    /// The dense-array plan projected more cells than the budget allowed
    /// and the query was re-run on the sparse hash-based path.
    pub degraded_dense_to_sparse: bool,
    /// The cascade's projected lattice size exceeded the cell budget and
    /// the query fell back to per-grouping-set streaming scans.
    pub degraded_to_streaming: bool,
    /// Number of aggregate lanes the vectorized columnar kernels carried
    /// (0 when the query ran the Init/Iter/Final row path — holistic or
    /// user-defined aggregates, or non-primitive measure columns).
    pub vectorized_kernels_used: u64,
    /// Fixed-size row-range morsels pulled by scan workers (0 for the
    /// pre-split `Row`-keyed paths).
    pub morsels_processed: u64,
    /// Partitions used by radix-partitioned grouping (0 when the core
    /// scan ran the single hash map or the RLE path instead; `u32` — the
    /// scatter clamps to 4096 partitions).
    pub radix_partitions: u32,
    /// Key runs folded by the run-length scan (0 when the per-row morsel
    /// scan ran instead).
    pub rle_runs: u64,
    /// Milliseconds the query spent waiting in the admission queue before
    /// execution (0 when admitted immediately or ungoverned). Queue time
    /// counts against the query's own deadline.
    pub queue_wait_ms: u32,
    /// Cell budget granted by the admission controller out of the global
    /// budget (0 = unlimited / ungoverned).
    pub granted_cells: u64,
    /// Backoff hint attached to a load-shedding rejection, in
    /// milliseconds (0 = no hint; on a shed whose cost can never fit the
    /// global budget, retrying is pointless and the hint stays 0).
    pub retry_after_ms: u32,
    /// The admission controller's disposition of this query.
    pub admission: AdmissionVerdict,
    /// Whether a lattice cache answered this query by re-aggregating a
    /// materialized ancestor instead of scanning base rows (the §5
    /// smallest-parent rewrite applied across queries, not within one).
    pub answered_from_cache: bool,
    /// Bitmask of the materialized ancestor grouping set that served the
    /// cache hit (0 when `answered_from_cache` is false).
    pub cache_ancestor_bits: u32,
}

impl ExecStats {
    pub fn add(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.iter_calls += other.iter_calls;
        self.merge_calls += other.merge_calls;
        self.final_calls += other.final_calls;
        self.sorts += other.sorts;
        self.threads_used = self.threads_used.max(other.threads_used);
        self.encoded_keys |= other.encoded_keys;
        self.degraded_dense_to_sparse |= other.degraded_dense_to_sparse;
        self.degraded_to_streaming |= other.degraded_to_streaming;
        self.vectorized_kernels_used = self
            .vectorized_kernels_used
            .max(other.vectorized_kernels_used);
        self.morsels_processed += other.morsels_processed;
        self.radix_partitions = self.radix_partitions.max(other.radix_partitions);
        self.rle_runs += other.rle_runs;
        self.queue_wait_ms += other.queue_wait_ms;
        self.granted_cells = self.granted_cells.max(other.granted_cells);
        self.retry_after_ms = self.retry_after_ms.max(other.retry_after_ms);
        self.answered_from_cache |= other.answered_from_cache;
        self.cache_ancestor_bits = self.cache_ancestor_bits.max(other.cache_ancestor_bits);
        // The most severe verdict wins when folding partial stats.
        let rank = |v: AdmissionVerdict| match v {
            AdmissionVerdict::Ungoverned => 0,
            AdmissionVerdict::Admitted => 1,
            AdmissionVerdict::Queued => 2,
            AdmissionVerdict::Shed => 3,
        };
        if rank(other.admission) > rank(self.admission) {
            self.admission = other.admission;
        }
    }
}

/// The cells of one grouping set: key (one value per *member* replaced by
/// its actual value, dropped dimensions already `ALL`) → one accumulator
/// per aggregate. Hashed with the Fx hash — group keys are not
/// attacker-controlled, so SipHash's DoS resistance buys nothing here.
pub(crate) type GroupMap = FxHashMap<Row, Vec<Box<dyn Accumulator>>>;

/// Cells for a whole family of grouping sets.
pub(crate) type SetMaps = Vec<(GroupingSet, GroupMap)>;

/// The grouped (pre-materialization) result of a cube run, in whichever
/// representation the engine that produced it uses. The operator layer
/// filters sets and materializes through this enum so the vectorized
/// engine never has to hydrate its POD cells into boxed accumulators.
pub(crate) enum Grouped {
    /// Row-path cells: boxed accumulators keyed by decoded `Row`s.
    Rows(SetMaps),
    /// Kernel-path cells: flat arenas of POD cells plus the plan and key
    /// encoder needed to finalize them directly.
    Kernels(crate::algorithm::vectorized::KernelSets),
}

#[cfg(test)]
impl Grouped {
    /// Collapse to the row-path representation so tests can compare
    /// engines cell by cell regardless of which one ran.
    pub(crate) fn into_set_maps(self, aggs: &[BoundAgg]) -> CubeResult<SetMaps> {
        match self {
            Grouped::Rows(maps) => Ok(maps),
            Grouped::Kernels(k) => k.into_set_maps(aggs),
        }
    }
}

/// Evaluate all dimensions of one row — the full cube coordinate.
#[inline]
pub(crate) fn full_key(dims: &[BoundDimension], row: &Row) -> Row {
    Row::new(dims.iter().map(|d| d.eval(row)).collect())
}

/// Project a full coordinate onto a grouping set: members keep their
/// value, dropped dimensions become `ALL`.
#[inline]
pub(crate) fn project_key(full: &Row, set: GroupingSet) -> Row {
    Row::new(
        full.iter()
            .enumerate()
            .map(|(d, v)| {
                if set.contains(d) {
                    v.clone()
                } else {
                    Value::All
                }
            })
            .collect(),
    )
}

/// Fold one row into one grouping-set map (Init on first touch, then Iter
/// per aggregate). A fresh cell charges the budget; every Init and Iter
/// callback runs under the panic guard.
#[inline]
pub(crate) fn update_cell(
    map: &mut GroupMap,
    key: Row,
    row: &Row,
    aggs: &[BoundAgg],
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<()> {
    use std::collections::hash_map::Entry;
    let accs = match map.entry(key) {
        Entry::Occupied(e) => e.into_mut(),
        Entry::Vacant(e) => {
            ctx.charge_cells(1)?;
            e.insert(exec::guarded_init(aggs)?)
        }
    };
    for (acc, agg) in accs.iter_mut().zip(aggs.iter()) {
        exec::guard(agg.func.name(), || acc.iter(agg.input_value(row)))?;
        stats.iter_calls += 1;
    }
    Ok(())
}

/// One full scan computing the cube *core* — the ordinary GROUP BY over
/// all dimensions.
pub(crate) fn compute_core(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<GroupMap> {
    exec::failpoint("core::scan")?;
    let mut map = GroupMap::default();
    for (i, row) in rows.iter().enumerate() {
        ctx.tick(i)?;
        stats.rows_scanned += 1;
        let key = full_key(dims, row);
        update_cell(&mut map, key, row, aggs, stats, ctx)?;
    }
    Ok(map)
}

/// Distinct-value count per dimension, read off the core's keys. These are
/// the `C_i` of the paper's cardinality formula and drive smallest-parent
/// selection. Only the `Row`-key fallback pays this scan — the encoded
/// engine reads the same counts off the symbol tables built during
/// encoding ([`crate::encode::KeyEncoder::cardinalities`]).
pub(crate) fn core_cardinalities(core: &GroupMap, n_dims: usize) -> Vec<usize> {
    let mut seen: Vec<dc_relation::FxHashSet<&Value>> = (0..n_dims)
        .map(|_| dc_relation::FxHashSet::default())
        .collect();
    for key in core.keys() {
        for (d, v) in key.iter().enumerate() {
            seen[d].insert(v);
        }
    }
    seen.into_iter().map(|s| s.len()).collect()
}

/// The result schema: grouping columns (marked `ALL ALLOWED`) followed by
/// one column per aggregate.
pub(crate) fn result_schema(
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    agg_types: &[dc_relation::DataType],
) -> CubeResult<Schema> {
    let mut cols: Vec<ColumnDef> = dims
        .iter()
        .map(|d| ColumnDef::with_all(&*d.name, d.dtype))
        .collect();
    for (a, ty) in aggs.iter().zip(agg_types.iter()) {
        cols.push(ColumnDef::new(&*a.output, *ty));
    }
    Ok(Schema::new(cols)?)
}

/// Materialize cell maps into one relation, in the set order given
/// (core first), each set's rows sorted by key so output is deterministic.
/// Each Final() callback runs under the panic guard.
pub(crate) fn materialize(
    schema: Schema,
    set_maps: SetMaps,
    aggs: &[BoundAgg],
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<Table> {
    exec::failpoint("materialize")?;
    let mut out = Table::empty(schema);
    for (_set, map) in set_maps {
        ctx.checkpoint()?;
        let mut cells: Vec<(Row, Vec<Box<dyn Accumulator>>)> = map.into_iter().collect();
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (key, accs)) in cells.into_iter().enumerate() {
            ctx.tick(i)?;
            let mut vals = key.0;
            for (acc, agg) in accs.iter().zip(aggs.iter()) {
                vals.push(exec::guard(agg.func.name(), || acc.final_value())?);
                stats.final_calls += 1;
            }
            out.push_unchecked(Row::new(vals));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType};

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1994, 40],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap()
    }

    fn bind(
        t: &Table,
        dims: &[&str],
        agg: &str,
        col: &str,
    ) -> (Vec<BoundDimension>, Vec<BoundAgg>) {
        let dims: Vec<BoundDimension> = dims
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![AggSpec::new(builtin(agg).unwrap(), col)
            .bind(t.schema())
            .unwrap()];
        (dims, aggs)
    }

    #[test]
    fn core_partitions_and_aggregates() {
        let t = sales();
        let (dims, aggs) = bind(&t, &["model", "year"], "SUM", "units");
        let mut stats = ExecStats::default();
        let core = compute_core(
            t.rows(),
            &dims,
            &aggs,
            &mut stats,
            &ExecContext::unlimited(),
        )
        .unwrap();
        assert_eq!(core.len(), 3); // (Chevy,94) (Chevy,95) (Ford,94)
        assert_eq!(stats.rows_scanned, 4);
        assert_eq!(stats.iter_calls, 4); // one agg × four rows
        let key = row!["Chevy", 1994];
        assert_eq!(core[&key][0].final_value(), Value::Int(90));
    }

    #[test]
    fn cardinalities_from_core() {
        let t = sales();
        let (dims, aggs) = bind(&t, &["model", "year"], "SUM", "units");
        let core = compute_core(
            t.rows(),
            &dims,
            &aggs,
            &mut ExecStats::default(),
            &ExecContext::unlimited(),
        )
        .unwrap();
        assert_eq!(core_cardinalities(&core, 2), vec![2, 2]);
    }

    #[test]
    fn project_key_substitutes_all() {
        let full = row!["Chevy", 1994];
        let set = GroupingSet::from_dims(&[1]).unwrap();
        let p = project_key(&full, set);
        assert_eq!(p[0], Value::All);
        assert_eq!(p[1], Value::Int(1994));
    }

    #[test]
    fn materialize_sorts_cells() {
        let t = sales();
        let (dims, aggs) = bind(&t, &["model"], "SUM", "units");
        let mut stats = ExecStats::default();
        let ctx = ExecContext::unlimited();
        let core = compute_core(t.rows(), &dims, &aggs, &mut stats, &ctx).unwrap();
        let schema = result_schema(&dims, &aggs, &[DataType::Int]).unwrap();
        let table = materialize(
            schema,
            vec![(GroupingSet::full(1), core)],
            &aggs,
            &mut stats,
            &ctx,
        )
        .unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.rows()[0], row!["Chevy", 175]);
        assert_eq!(table.rows()[1], row!["Ford", 60]);
        assert_eq!(stats.final_calls, 2);
    }
}
