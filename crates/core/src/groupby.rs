//! The GROUP BY execution core (Figure 2: partition, then aggregate).
//!
//! Every cube algorithm is built from the pieces here: hash-partitioned
//! cells of live accumulators (`GroupMap`), key projection onto a
//! grouping set (replacing dropped dimensions with `ALL`), and
//! materialization of cell maps into result [`Table`]s. [`ExecStats`]
//! counts the work each algorithm does — the unit the paper's §5 cost
//! arguments are phrased in (Iter() calls, scans, merges).

use crate::error::CubeResult;
use crate::lattice::GroupingSet;
use crate::spec::{BoundAgg, BoundDimension};
use dc_aggregate::Accumulator;
use dc_relation::{ColumnDef, FxHashMap, Row, Schema, Table, Value};

/// Work counters for one cube execution; the currency of the paper's cost
/// analysis ("the 2^N-algorithm invokes the Iter() function T × 2^N
/// times").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows scanned (counted once per scan pass).
    pub rows_scanned: u64,
    /// Iter() calls — one per (row, cell, aggregate) touch.
    pub iter_calls: u64,
    /// Iter_super() calls — scratchpad merges in the cascade.
    pub merge_calls: u64,
    /// Final() calls — one per output cell per aggregate.
    pub final_calls: u64,
    /// Sort passes performed.
    pub sorts: u64,
}

impl ExecStats {
    pub fn add(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.iter_calls += other.iter_calls;
        self.merge_calls += other.merge_calls;
        self.final_calls += other.final_calls;
        self.sorts += other.sorts;
    }
}

/// The cells of one grouping set: key (one value per *member* replaced by
/// its actual value, dropped dimensions already `ALL`) → one accumulator
/// per aggregate. Hashed with the Fx hash — group keys are not
/// attacker-controlled, so SipHash's DoS resistance buys nothing here.
pub(crate) type GroupMap = FxHashMap<Row, Vec<Box<dyn Accumulator>>>;

/// Cells for a whole family of grouping sets.
pub(crate) type SetMaps = Vec<(GroupingSet, GroupMap)>;

/// Fresh accumulators for every aggregate — the paper's Init() burst for a
/// new cell.
#[inline]
pub(crate) fn init_accs(aggs: &[BoundAgg]) -> Vec<Box<dyn Accumulator>> {
    aggs.iter().map(|a| a.func.init()).collect()
}

/// Evaluate all dimensions of one row — the full cube coordinate.
#[inline]
pub(crate) fn full_key(dims: &[BoundDimension], row: &Row) -> Row {
    Row::new(dims.iter().map(|d| d.eval(row)).collect())
}

/// Project a full coordinate onto a grouping set: members keep their
/// value, dropped dimensions become `ALL`.
#[inline]
pub(crate) fn project_key(full: &Row, set: GroupingSet) -> Row {
    Row::new(
        full.iter()
            .enumerate()
            .map(|(d, v)| if set.contains(d) { v.clone() } else { Value::All })
            .collect(),
    )
}

/// Fold one row into one grouping-set map (Init on first touch, then Iter
/// per aggregate).
#[inline]
pub(crate) fn update_cell(
    map: &mut GroupMap,
    key: Row,
    row: &Row,
    aggs: &[BoundAgg],
    stats: &mut ExecStats,
) {
    let accs = map.entry(key).or_insert_with(|| init_accs(aggs));
    for (acc, agg) in accs.iter_mut().zip(aggs.iter()) {
        acc.iter(agg.input_value(row));
        stats.iter_calls += 1;
    }
}

/// One full scan computing the cube *core* — the ordinary GROUP BY over
/// all dimensions.
pub(crate) fn compute_core(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    stats: &mut ExecStats,
) -> GroupMap {
    let mut map = GroupMap::default();
    for row in rows {
        stats.rows_scanned += 1;
        let key = full_key(dims, row);
        update_cell(&mut map, key, row, aggs, stats);
    }
    map
}

/// Distinct-value count per dimension, read off the core's keys. These are
/// the `C_i` of the paper's cardinality formula and drive smallest-parent
/// selection. Only the `Row`-key fallback pays this scan — the encoded
/// engine reads the same counts off the symbol tables built during
/// encoding ([`crate::encode::KeyEncoder::cardinalities`]).
pub(crate) fn core_cardinalities(core: &GroupMap, n_dims: usize) -> Vec<usize> {
    let mut seen: Vec<dc_relation::FxHashSet<&Value>> =
        (0..n_dims).map(|_| dc_relation::FxHashSet::default()).collect();
    for key in core.keys() {
        for (d, v) in key.iter().enumerate() {
            seen[d].insert(v);
        }
    }
    seen.into_iter().map(|s| s.len()).collect()
}

/// The result schema: grouping columns (marked `ALL ALLOWED`) followed by
/// one column per aggregate.
pub(crate) fn result_schema(
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    agg_types: &[dc_relation::DataType],
) -> CubeResult<Schema> {
    let mut cols: Vec<ColumnDef> =
        dims.iter().map(|d| ColumnDef::with_all(&*d.name, d.dtype)).collect();
    for (a, ty) in aggs.iter().zip(agg_types.iter()) {
        cols.push(ColumnDef::new(&*a.output, *ty));
    }
    Ok(Schema::new(cols)?)
}

/// Materialize cell maps into one relation, in the set order given
/// (core first), each set's rows sorted by key so output is deterministic.
pub(crate) fn materialize(
    schema: Schema,
    set_maps: SetMaps,
    stats: &mut ExecStats,
) -> Table {
    let mut out = Table::empty(schema);
    for (_set, map) in set_maps {
        let mut cells: Vec<(Row, Vec<Box<dyn Accumulator>>)> = map.into_iter().collect();
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, accs) in cells {
            let mut vals = key.0;
            for acc in &accs {
                vals.push(acc.final_value());
                stats.final_calls += 1;
            }
            out.push_unchecked(Row::new(vals));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType};

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1994, 40],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap()
    }

    fn bind(
        t: &Table,
        dims: &[&str],
        agg: &str,
        col: &str,
    ) -> (Vec<BoundDimension>, Vec<BoundAgg>) {
        let dims: Vec<BoundDimension> = dims
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs =
            vec![AggSpec::new(builtin(agg).unwrap(), col).bind(t.schema()).unwrap()];
        (dims, aggs)
    }

    #[test]
    fn core_partitions_and_aggregates() {
        let t = sales();
        let (dims, aggs) = bind(&t, &["model", "year"], "SUM", "units");
        let mut stats = ExecStats::default();
        let core = compute_core(t.rows(), &dims, &aggs, &mut stats);
        assert_eq!(core.len(), 3); // (Chevy,94) (Chevy,95) (Ford,94)
        assert_eq!(stats.rows_scanned, 4);
        assert_eq!(stats.iter_calls, 4); // one agg × four rows
        let key = row!["Chevy", 1994];
        assert_eq!(core[&key][0].final_value(), Value::Int(90));
    }

    #[test]
    fn cardinalities_from_core() {
        let t = sales();
        let (dims, aggs) = bind(&t, &["model", "year"], "SUM", "units");
        let core = compute_core(t.rows(), &dims, &aggs, &mut ExecStats::default());
        assert_eq!(core_cardinalities(&core, 2), vec![2, 2]);
    }

    #[test]
    fn project_key_substitutes_all() {
        let full = row!["Chevy", 1994];
        let set = GroupingSet::from_dims(&[1]).unwrap();
        let p = project_key(&full, set);
        assert_eq!(p[0], Value::All);
        assert_eq!(p[1], Value::Int(1994));
    }

    #[test]
    fn materialize_sorts_cells() {
        let t = sales();
        let (dims, aggs) = bind(&t, &["model"], "SUM", "units");
        let mut stats = ExecStats::default();
        let core = compute_core(t.rows(), &dims, &aggs, &mut stats);
        let schema = result_schema(&dims, &aggs, &[DataType::Int]).unwrap();
        let table =
            materialize(schema, vec![(GroupingSet::full(1), core)], &mut stats);
        assert_eq!(table.len(), 2);
        assert_eq!(table.rows()[0], row!["Chevy", 175]);
        assert_eq!(table.rows()[1], row!["Ford", 60]);
        assert_eq!(stats.final_calls, 2);
    }
}
