//! The dc-serve wire protocol: length-prefixed frames of UTF-8 text.
//!
//! A request frame is the SQL statement text. A response frame is either
//!
//! ```text
//! OK <rows> <cols>\n
//! <tab-separated header>\n
//! <tab-separated row>\n ...
//! ```
//!
//! or
//!
//! ```text
//! ERR <CODE> <retry_after_ms>\n
//! <human-readable message>
//! ```
//!
//! where `<CODE>` is one of `RESOURCE_EXHAUSTED`, `CANCELLED`,
//! `AGG_PANICKED`, `CUBE`, `LEX`, `PARSE`, `PLAN`, `REL`, or `AGG` — the
//! typed-error taxonomy clients key retry logic on. `retry_after_ms` is
//! the admission controller's backoff hint (0 when retrying is pointless
//! or the error is not load-related).
//!
//! Framing is a big-endian `u32` byte length followed by that many bytes.
//! Cell text is escaped so tabs/newlines in string values cannot corrupt
//! the tabular body: `\t` → `\\t`, `\n` → `\\n`, `\\` → `\\\\`.

use crate::error::SqlError;
use dc_relation::Table;
use std::io::{self, Read, Write};

/// Hard ceiling on accepted frame length (16 MiB) — a corrupt or
/// malicious length prefix must not trigger a giant allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary (the peer closed the connection between requests).
///
/// `keep_waiting` is consulted on read timeouts (`WouldBlock` /
/// `TimedOut`): returning `true` retries the read, `false` aborts with
/// the timeout error. Servers pass their shutdown flag here so blocked
/// reads notice shutdown within one timeout tick.
pub fn read_frame(
    r: &mut impl Read,
    max_len: u32,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_buf, keep_waiting)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf);
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) && keep_waiting() => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// Fill `buf` exactly; `Ok(false)` means clean EOF before the first byte.
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    keep_waiting: &mut dyn FnMut() -> bool,
) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) && keep_waiting() => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn escape_cell(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_cell(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Encode a successful result table as a response payload.
pub fn encode_table(t: &Table) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(&format!("OK {} {}\n", t.len(), t.schema().len()));
    let header: Vec<String> = t.schema().names().iter().map(|n| escape_cell(n)).collect();
    out.push_str(&header.join("\t"));
    out.push('\n');
    // cube-lint: allow(checkpoint, serializing an already-computed result; no budget applies)
    for row in t.rows() {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| escape_cell(&v.to_string()))
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out.into_bytes()
}

/// The wire error code for a [`SqlError`] plus its retry-after hint.
pub fn error_code(e: &SqlError) -> (&'static str, u64) {
    match e {
        SqlError::Cube(datacube::CubeError::ResourceExhausted { stats, .. }) => {
            ("RESOURCE_EXHAUSTED", u64::from(stats.retry_after_ms))
        }
        SqlError::Cube(datacube::CubeError::Cancelled { .. }) => ("CANCELLED", 0),
        SqlError::Cube(datacube::CubeError::AggPanicked { .. }) => ("AGG_PANICKED", 0),
        SqlError::Cube(_) => ("CUBE", 0),
        SqlError::Lex { .. } => ("LEX", 0),
        SqlError::Parse { .. } => ("PARSE", 0),
        SqlError::Plan(_) => ("PLAN", 0),
        SqlError::Rel(_) => ("REL", 0),
        SqlError::Agg(_) => ("AGG", 0),
    }
}

/// Encode a typed error as a response payload.
pub fn encode_error(e: &SqlError) -> Vec<u8> {
    let (code, retry) = error_code(e);
    format!("ERR {code} {retry}\n{e}").into_bytes()
}

/// A decoded response frame, as seen by clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A result table: header names plus unescaped cell text per row.
    Table {
        columns: Vec<String>,
        rows: Vec<Vec<String>>,
    },
    /// A typed error with the admission controller's backoff hint.
    Error {
        code: String,
        retry_after_ms: u64,
        message: String,
    },
}

/// Decode a response payload (the client half of the protocol).
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad UTF-8: {e}")))?;
    let bad =
        |why: &str| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {why}"));
    let (head, body) = match text.split_once('\n') {
        Some(pair) => pair,
        None => (text, ""),
    };
    let mut parts = head.split(' ');
    match parts.next() {
        Some("OK") => {
            let rows: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("missing row count"))?;
            let _cols = parts.next();
            let mut lines = body.lines();
            let columns: Vec<String> = lines
                .next()
                .ok_or_else(|| bad("missing header"))?
                .split('\t')
                .map(unescape_cell)
                .collect();
            let mut out_rows = Vec::with_capacity(rows);
            // cube-lint: allow(checkpoint, client-side decode of a bounded frame)
            for line in lines {
                out_rows.push(line.split('\t').map(unescape_cell).collect());
            }
            if out_rows.len() != rows {
                return Err(bad("row count mismatch"));
            }
            Ok(Response::Table {
                columns,
                rows: out_rows,
            })
        }
        Some("ERR") => {
            let code = parts.next().ok_or_else(|| bad("missing error code"))?;
            let retry_after_ms: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            Ok(Response::Error {
                code: code.to_string(),
                retry_after_ms,
                message: body.to_string(),
            })
        }
        // cube-lint: allow(wildcard, scrutinee is Option<&str>, not Value)
        _ => Err(bad("unknown status word")),
    }
}

/// Client helper: send one SQL request over `stream` and decode the
/// response. Blocks until the server answers or the stream errors.
pub fn request(stream: &mut (impl Read + Write), sql: &str) -> io::Result<Response> {
    write_frame(stream, sql.as_bytes())?;
    let payload = read_frame(stream, MAX_FRAME_LEN, &mut || true)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"))?;
    decode_response(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relation::{row, DataType, Schema, Value};

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"SELECT 1").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        let mut wait = || true;
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_LEN, &mut wait)
                .unwrap()
                .as_deref(),
            Some(&b"SELECT 1"[..])
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_LEN, &mut wait)
                .unwrap()
                .as_deref(),
            Some(&b""[..])
        );
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut cursor, MAX_FRAME_LEN, &mut wait)
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"SELECT 1").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor, MAX_FRAME_LEN, &mut || true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor, 1024, &mut || true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn table_round_trips_with_escapes() {
        let schema = Schema::from_pairs(&[("name", DataType::Str), ("n", DataType::Int)]);
        let t = dc_relation::Table::new(
            schema,
            vec![
                Row::new(vec![Value::str("tab\there"), Value::Int(1)]),
                Row::new(vec![Value::str("line\nbreak"), Value::Int(2)]),
            ],
        )
        .unwrap();
        let decoded = decode_response(&encode_table(&t)).unwrap();
        match decoded {
            Response::Table { columns, rows } => {
                assert_eq!(columns, vec!["name", "n"]);
                assert_eq!(rows[0][0], "tab\there");
                assert_eq!(rows[1][0], "line\nbreak");
            }
            // cube-lint: allow(wildcard, scrutinee is Response, not Value)
            other => panic!("expected table, got {other:?}"),
        }
        let _ = row![1]; // keep the macro import exercised
    }

    use dc_relation::Row;

    #[test]
    fn errors_carry_code_and_retry_hint() {
        let stats = datacube::ExecStats {
            retry_after_ms: 75,
            ..Default::default()
        };
        let e = SqlError::Cube(datacube::CubeError::ResourceExhausted {
            resource: datacube::Resource::AdmissionQueue,
            limit: 4,
            observed: 5,
            stats,
        });
        let decoded = decode_response(&encode_error(&e)).unwrap();
        match decoded {
            Response::Error {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, "RESOURCE_EXHAUSTED");
                assert_eq!(retry_after_ms, 75);
            }
            // cube-lint: allow(wildcard, scrutinee is Response, not Value)
            other => panic!("expected error, got {other:?}"),
        }

        let parse = SqlError::Plan("nope".into());
        assert_eq!(error_code(&parse), ("PLAN", 0));
    }
}
