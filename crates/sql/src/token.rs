//! The SQL lexer.

use crate::error::{SqlError, SqlResult};
use std::fmt;

/// Reserved words. Everything else alphabetic is an [`Token::Ident`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Rollup,
    Cube,
    Grouping,
    Sets,
    Having,
    Order,
    Asc,
    Desc,
    Union,
    All,
    Distinct,
    As,
    And,
    Or,
    Not,
    In,
    Between,
    Is,
    Null,
    True,
    False,
    Join,
    Using,
    On,
    Limit,
    Explain,
    Set,
    Insert,
    Into,
    Values,
    Delete,
    Update,
}

impl Keyword {
    fn from_word(w: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match w.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "ROLLUP" => Rollup,
            "CUBE" => Cube,
            "GROUPING" => Grouping,
            "SETS" => Sets,
            "HAVING" => Having,
            "ORDER" => Order,
            "ASC" => Asc,
            "DESC" => Desc,
            "UNION" => Union,
            "ALL" => All,
            "DISTINCT" => Distinct,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "BETWEEN" => Between,
            "IS" => Is,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "JOIN" => Join,
            "USING" => Using,
            "ON" => On,
            "LIMIT" => Limit,
            "EXPLAIN" => Explain,
            "SET" => Set,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "DELETE" => Delete,
            "UPDATE" => Update,
            _ => return None,
        })
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(Keyword),
    /// Identifier (case preserved; matching is case-insensitive at plan
    /// time for function names, exact for column/table names).
    Ident(String),
    Int(i64),
    Float(f64),
    /// Single-quoted string literal; `''` escapes a quote.
    Str(String),
    /// Punctuation / operators.
    Symbol(Symbol),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    Dot,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => {
                let t = match s {
                    Symbol::LParen => "(",
                    Symbol::RParen => ")",
                    Symbol::Comma => ",",
                    Symbol::Star => "*",
                    Symbol::Plus => "+",
                    Symbol::Minus => "-",
                    Symbol::Slash => "/",
                    Symbol::Percent => "%",
                    Symbol::Eq => "=",
                    Symbol::Neq => "<>",
                    Symbol::Lt => "<",
                    Symbol::Lte => "<=",
                    Symbol::Gt => ">",
                    Symbol::Gte => ">=",
                    Symbol::Dot => ".",
                    Symbol::Semicolon => ";",
                };
                write!(f, "{t}")
            }
        }
    }
}

/// Tokenize a SQL string. Comments (`-- ...\n`) and whitespace are
/// skipped.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::Lex {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: format!("bad float literal {text}"),
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: format!("bad integer literal {text}"),
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match Keyword::from_word(word) {
                    Some(k) => tokens.push(Token::Keyword(k)),
                    None => tokens.push(Token::Ident(word.to_string())),
                }
            }
            _ => {
                let (sym, len) = match (c, bytes.get(i + 1).map(|b| *b as char)) {
                    ('<', Some('=')) => (Symbol::Lte, 2),
                    ('<', Some('>')) => (Symbol::Neq, 2),
                    ('>', Some('=')) => (Symbol::Gte, 2),
                    ('!', Some('=')) => (Symbol::Neq, 2),
                    ('(', _) => (Symbol::LParen, 1),
                    (')', _) => (Symbol::RParen, 1),
                    (',', _) => (Symbol::Comma, 1),
                    ('*', _) => (Symbol::Star, 1),
                    ('+', _) => (Symbol::Plus, 1),
                    ('-', _) => (Symbol::Minus, 1),
                    ('/', _) => (Symbol::Slash, 1),
                    ('%', _) => (Symbol::Percent, 1),
                    ('=', _) => (Symbol::Eq, 1),
                    ('<', _) => (Symbol::Lt, 1),
                    ('>', _) => (Symbol::Gt, 1),
                    ('.', _) => (Symbol::Dot, 1),
                    (';', _) => (Symbol::Semicolon, 1),
                    _ => {
                        return Err(SqlError::Lex {
                            pos: i,
                            message: format!("unexpected character '{c}'"),
                        })
                    }
                };
                tokens.push(Token::Symbol(sym));
                i += len;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_cube_query() {
        let toks =
            tokenize("SELECT Model, SUM(Sales) FROM Sales GROUP BY CUBE Model, Year;").unwrap();
        assert!(toks.contains(&Token::Keyword(Keyword::Cube)));
        assert!(toks.contains(&Token::Ident("Model".into())));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(Symbol::Semicolon));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select FROM Where rollup").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::From),
                Token::Keyword(Keyword::Where),
                Token::Keyword(Keyword::Rollup),
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let toks = tokenize("42 3.5 'Chevy' 'O''Brien'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(3.5),
                Token::Str("Chevy".into()),
                Token::Str("O'Brien".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a <= b <> c >= d != e").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![Symbol::Lte, Symbol::Neq, Symbol::Gte, Symbol::Neq]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT -- the select list\n x").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn errors_carry_position() {
        match tokenize("SELECT @") {
            Err(SqlError::Lex { pos, .. }) => assert_eq!(pos, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(matches!(
            tokenize("'unterminated"),
            Err(SqlError::Lex { .. })
        ));
    }
}
