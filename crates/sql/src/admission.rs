//! Admission control for the concurrent cube service.
//!
//! The cube is "potentially much larger than the base relation" (§3): one
//! 2^N query can hold the memory budget of a hundred cheap GROUP BYs. An
//! ungoverned multi-session engine therefore fails in two ways under
//! load: it queues unboundedly until every client times out, or it lets
//! one expensive query starve the cheap interactive ones. This module is
//! the gatekeeper in front of query execution:
//!
//! * **Global budget apportionment** — a service-wide cell budget
//!   ([`ServiceConfig::global_cells`], folded through the same per-cell
//!   size model `ExecLimits` uses). Each admitted query *reserves* an
//!   upper-bound share (its cost estimate, floored at
//!   [`ServiceConfig::min_grant_cells`]); the reservation is released
//!   when the query's [`Permit`] drops.
//! * **Bounded queueing with deadline-aware waiting** — when slots or
//!   budget are unavailable the query waits on a condvar, but queue time
//!   counts against the query's own deadline, and the queue itself is
//!   bounded per lane ([`ServiceConfig::queue_depth`]): beyond it the
//!   controller *sheds* with a typed `ResourceExhausted` carrying a
//!   retry-after hint instead of queueing unboundedly.
//! * **Fairness** — queries whose cost estimate is at most
//!   [`ServiceConfig::cheap_cells`] ride a dedicated *cheap lane*:
//!   [`ServiceConfig::cheap_reserved`] execution slots only they may
//!   occupy, and exemption from the global-budget availability check
//!   (their worst-case overcommit, `cheap_reserved × cheap_cells`, is
//!   part of budget sizing). A burst of 2^N cubes can saturate the heavy
//!   lane and the budget without ever starving a cheap GROUP BY.
//!
//! Cost estimates are *upper bounds*: a grouping-set family of `S` sets
//! over `T` rows materializes at most `S × (T + 1)` cells, so a granted
//! reservation can never be exceeded by the execution it admits. The
//! bound is deliberately loose (the true cell count is the §3 product of
//! dimension cardinalities, unknown before the scan); tightening it with
//! the encoding symbol tables is future cache work (ROADMAP item 2).

use datacube::{AdmissionVerdict, CancelToken, CubeError, CubeResult, ExecStats, Resource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Test-support failpoint for the service sites (`service::admit`,
/// `service::queue_wait`, `service::respond`). With the `faults` feature
/// off this compiles to `Ok(())`; a tripped budget fault surfaces as the
/// same typed shed error a full queue produces.
#[cfg(feature = "faults")]
pub(crate) fn failpoint(site: &str) -> CubeResult<()> {
    if dc_aggregate::faults::hit(site) {
        let stats = ExecStats {
            admission: AdmissionVerdict::Shed,
            retry_after_ms: 1,
            ..Default::default()
        };
        return Err(CubeError::ResourceExhausted {
            resource: Resource::AdmissionQueue,
            limit: 0,
            observed: 0,
            stats,
        });
    }
    Ok(())
}

/// No-op without the `faults` feature.
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub(crate) fn failpoint(_site: &str) -> CubeResult<()> {
    Ok(())
}

/// Service-level limits shared by every session of one engine. The
/// default is fully unlimited — a library `Engine` behaves exactly as it
/// did before the service layer existed.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Maximum queries executing at once (0 = unlimited).
    pub max_concurrent: usize,
    /// Of `max_concurrent`, slots only cheap-lane queries may occupy.
    /// Clamped to `max_concurrent - 1` so at least one slot can always
    /// serve heavy queries.
    pub cheap_reserved: usize,
    /// Cost threshold (estimated cells) at or below which a query rides
    /// the cheap lane. 0 = no cheap lane; everything is heavy.
    pub cheap_cells: u64,
    /// Global cell budget apportioned across in-flight heavy queries
    /// (0 = unlimited).
    pub global_cells: u64,
    /// Floor on a single reservation, so tiny estimates still get a
    /// usable share (0 = no floor).
    pub min_grant_cells: u64,
    /// Waiters allowed per lane before load shedding kicks in (0 = no
    /// queue: shed immediately when nothing is available).
    pub queue_depth: usize,
}

impl ServiceConfig {
    /// True when no limit at all is configured — the admission fast path.
    pub fn is_unlimited(&self) -> bool {
        self.max_concurrent == 0 && self.global_cells == 0
    }
}

/// The cost estimate admission reasons about, derived from the parsed
/// statement and the catalog snapshot before execution starts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Base rows feeding the aggregation (upper bound across UNION
    /// branches and joins).
    pub rows: u64,
    /// Grouping sets the statement expands to (1 for plain projection).
    pub sets: u64,
    /// Upper bound on materialized cells: `sets × (rows + 1)`.
    pub cells: u64,
}

impl QueryCost {
    pub fn new(rows: u64, sets: u64) -> Self {
        QueryCost {
            rows,
            sets,
            cells: sets.saturating_mul(rows.saturating_add(1)),
        }
    }
}

#[derive(Debug, Default)]
struct AdmState {
    running: usize,
    heavy_running: usize,
    cells_out: u64,
    cheap_queued: usize,
    heavy_queued: usize,
}

/// Admission controller shared by every session of one engine.
pub struct AdmissionController {
    cfg: ServiceConfig,
    state: Mutex<AdmState>,
    cv: Condvar,
    /// Monotone counters for observability and the stress suites.
    admitted: AtomicU64,
    queued: AtomicU64,
    shed: AtomicU64,
}

/// Aggregate counters since the controller was built.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionCounters {
    /// Queries admitted (immediately or after queueing).
    pub admitted: u64,
    /// Queries that waited in the queue before admission.
    pub queued: u64,
    /// Queries rejected by load shedding.
    pub shed: u64,
}

/// RAII grant: holds one execution slot and a cell reservation; dropping
/// it releases both and wakes the queue.
pub struct Permit {
    ctrl: Arc<AdmissionController>,
    heavy: bool,
    granted_cells: u64,
    /// Time spent waiting in the admission queue.
    pub queue_wait: Duration,
    /// Verdict to record into the query's `ExecStats`.
    pub verdict: AdmissionVerdict,
}

impl Permit {
    /// Cell reservation backing this permit (0 = unlimited).
    pub fn granted_cells(&self) -> u64 {
        self.granted_cells
    }
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("heavy", &self.heavy)
            .field("granted_cells", &self.granted_cells)
            .field("queue_wait", &self.queue_wait)
            .field("verdict", &self.verdict)
            .finish()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.verdict == AdmissionVerdict::Ungoverned {
            return; // fast-path permit: nothing was reserved
        }
        let mut st = self.ctrl.lock();
        st.running = st.running.saturating_sub(1);
        if self.heavy {
            st.heavy_running = st.heavy_running.saturating_sub(1);
        }
        st.cells_out = st.cells_out.saturating_sub(self.granted_cells);
        drop(st);
        self.ctrl.cv.notify_all();
    }
}

/// Decrements the lane's queued counter exactly once, even when an
/// injected fault unwinds mid-wait — a leaked count would make every
/// later shed decision wrongly eager.
struct QueuedGuard {
    ctrl: Arc<AdmissionController>,
    heavy: bool,
    armed: bool,
}

impl QueuedGuard {
    /// Decrement inline (caller already holds the state lock) and disarm.
    fn release(&mut self, st: &mut AdmState) {
        if self.armed {
            if self.heavy {
                st.heavy_queued = st.heavy_queued.saturating_sub(1);
            } else {
                st.cheap_queued = st.cheap_queued.saturating_sub(1);
            }
            self.armed = false;
        }
    }
}

impl Drop for QueuedGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let ctrl = Arc::clone(&self.ctrl);
        let mut st = ctrl.lock();
        if self.heavy {
            st.heavy_queued = st.heavy_queued.saturating_sub(1);
        } else {
            st.cheap_queued = st.cheap_queued.saturating_sub(1);
        }
    }
}

/// How often a queued query re-polls its cancel token and deadline while
/// waiting for a wakeup that may never come (e.g. cancellation from
/// another thread does not notify the condvar).
const QUEUE_POLL: Duration = Duration::from_millis(10);

impl AdmissionController {
    pub fn new(cfg: ServiceConfig) -> Arc<Self> {
        Arc::new(AdmissionController {
            cfg,
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        })
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    pub fn counters(&self) -> AdmissionCounters {
        AdmissionCounters {
            // cube-lint: allow(atomic, telemetry read of a monotone counter; admission state itself is mutex-guarded)
            admitted: self.admitted.load(Ordering::Relaxed),
            // cube-lint: allow(atomic, telemetry read of a monotone counter; admission state itself is mutex-guarded)
            queued: self.queued.load(Ordering::Relaxed),
            // cube-lint: allow(atomic, telemetry read of a monotone counter; admission state itself is mutex-guarded)
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    fn lock(&self) -> MutexGuard<'_, AdmState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Slots reserved exclusively for the cheap lane, clamped so heavy
    /// queries always have at least one slot to run in.
    fn cheap_reserved(&self) -> usize {
        if self.cfg.max_concurrent == 0 {
            0
        } else {
            self.cfg.cheap_reserved.min(self.cfg.max_concurrent - 1)
        }
    }

    fn is_heavy(&self, cost: &QueryCost) -> bool {
        self.cfg.cheap_cells == 0 || cost.cells > self.cfg.cheap_cells
    }

    /// Can this query start right now, given the current state?
    fn can_admit(&self, st: &AdmState, heavy: bool, need: u64) -> bool {
        if self.cfg.max_concurrent > 0 {
            if st.running >= self.cfg.max_concurrent {
                return false;
            }
            if heavy {
                let heavy_cap = self.cfg.max_concurrent - self.cheap_reserved();
                if st.heavy_running >= heavy_cap {
                    return false;
                }
            }
        }
        // Cheap-lane queries are exempt from the budget availability
        // check (bounded overcommit, see module docs); their reservation
        // is still counted in `cells_out`.
        if self.cfg.global_cells > 0
            && heavy
            && st.cells_out.saturating_add(need) > self.cfg.global_cells
        {
            return false;
        }
        true
    }

    /// Reservation size for a query: its upper-bound estimate, floored at
    /// the minimum grant (0 when no global budget is configured).
    fn grant_for(&self, cost: &QueryCost) -> u64 {
        if self.cfg.global_cells == 0 {
            0
        } else {
            cost.cells.max(self.cfg.min_grant_cells)
        }
    }

    /// Backoff hint for a shed response: proportional to the work already
    /// queued and running ahead of the client.
    fn retry_hint_ms(&self, st: &AdmState) -> u32 {
        let ahead = st.running + st.cheap_queued + st.heavy_queued;
        25u32.saturating_mul(ahead as u32 + 1)
    }

    fn shed_error(&self, st: &AdmState, waited: Duration, retry_after_ms: u32) -> CubeError {
        // cube-lint: allow(atomic, monotone shed counter; the shed decision was made under the state mutex)
        self.shed.fetch_add(1, Ordering::Relaxed);
        let stats = ExecStats {
            admission: AdmissionVerdict::Shed,
            retry_after_ms,
            queue_wait_ms: waited.as_millis() as u32,
            ..Default::default()
        };
        CubeError::ResourceExhausted {
            resource: Resource::AdmissionQueue,
            limit: self.cfg.queue_depth as u64,
            observed: (st.cheap_queued + st.heavy_queued) as u64,
            stats,
        }
    }

    /// Try to reserve `n` cells of the global budget for cached subcube
    /// views, so cache memory and query memory share one governed pool.
    /// Returns `false` (without reserving) when the budget cannot cover
    /// it right now — the caller simply skips caching. With no global
    /// budget configured the reservation is free and always granted.
    pub(crate) fn try_reserve_cache_cells(&self, n: u64) -> bool {
        if self.cfg.global_cells == 0 {
            return true;
        }
        let mut st = self.lock();
        if st.cells_out.saturating_add(n) > self.cfg.global_cells {
            return false;
        }
        st.cells_out = st.cells_out.saturating_add(n);
        true
    }

    /// Release a cache reservation taken by
    /// [`Self::try_reserve_cache_cells`] (eviction / invalidation path).
    pub(crate) fn release_cache_cells(&self, n: u64) {
        if self.cfg.global_cells == 0 || n == 0 {
            return;
        }
        let mut st = self.lock();
        st.cells_out = st.cells_out.saturating_sub(n);
        drop(st);
        self.cv.notify_all();
    }

    /// Admit one query, waiting (bounded by `deadline` and the lane's
    /// queue depth) until a slot and a budget share are available.
    ///
    /// Returns a typed error instead of a permit when:
    /// * the estimate can never fit the global budget (immediate shed,
    ///   retry hint 0 — retrying cannot help);
    /// * the lane's queue is full (shed with a positive retry hint);
    /// * `deadline` passes while queued (`Resource::TimeMs` — queue time
    ///   counts against the query's deadline);
    /// * `cancel` trips while queued (`CubeError::Cancelled`).
    pub fn admit(
        self: &Arc<Self>,
        cost: &QueryCost,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> CubeResult<Permit> {
        failpoint("service::admit")?;
        if self.cfg.is_unlimited() {
            // No admission governance: hand out a free permit without
            // touching the lock at all.
            // cube-lint: allow(atomic, monotone telemetry counter; the ungoverned path hands out free permits by design and publishes no state)
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit {
                ctrl: Arc::clone(self),
                heavy: false,
                granted_cells: 0,
                queue_wait: Duration::ZERO,
                verdict: AdmissionVerdict::Ungoverned,
            });
        }
        let heavy = self.is_heavy(cost);
        let need = self.grant_for(cost);
        let started = Instant::now();

        // A heavy query whose reservation exceeds the whole budget can
        // never be admitted: shed now, with no retry hint (retrying is
        // pointless until the budget is resized or the query shrinks).
        if self.cfg.global_cells > 0 && heavy && need > self.cfg.global_cells {
            // cube-lint: allow(atomic, monotone shed counter; the oversized-query rejection reads only immutable config)
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(CubeError::ResourceExhausted {
                resource: Resource::Cells,
                limit: self.cfg.global_cells,
                observed: need,
                stats: ExecStats {
                    admission: AdmissionVerdict::Shed,
                    ..Default::default()
                },
            });
        }

        // Declared before the lock guard so an unwinding failpoint drops
        // the guard (releasing the mutex) before this drops (re-locking).
        let mut queued_guard: Option<QueuedGuard> = None;
        let mut st = self.lock();
        loop {
            if self.can_admit(&st, heavy, need) {
                if let Some(g) = queued_guard.as_mut() {
                    g.release(&mut st);
                }
                st.running += 1;
                if heavy {
                    st.heavy_running += 1;
                }
                st.cells_out = st.cells_out.saturating_add(need);
                // cube-lint: allow(atomic, monotone telemetry counter incremented under the state mutex; cells_out itself is mutex-guarded)
                self.admitted.fetch_add(1, Ordering::Relaxed);
                let waited = started.elapsed();
                let verdict = if queued_guard.is_none() {
                    AdmissionVerdict::Admitted
                } else {
                    // cube-lint: allow(atomic, monotone telemetry counter incremented under the state mutex; cells_out itself is mutex-guarded)
                    self.queued.fetch_add(1, Ordering::Relaxed);
                    AdmissionVerdict::Queued
                };
                return Ok(Permit {
                    ctrl: Arc::clone(self),
                    heavy,
                    granted_cells: need,
                    queue_wait: waited,
                    verdict,
                });
            }
            if queued_guard.is_none() {
                let depth = if heavy {
                    st.heavy_queued
                } else {
                    st.cheap_queued
                };
                if depth >= self.cfg.queue_depth {
                    let hint = self.retry_hint_ms(&st);
                    return Err(self.shed_error(&st, started.elapsed(), hint));
                }
                if heavy {
                    st.heavy_queued += 1;
                } else {
                    st.cheap_queued += 1;
                }
                queued_guard = Some(QueuedGuard {
                    ctrl: Arc::clone(self),
                    heavy,
                    armed: true,
                });
            }
            // Deadline and cancellation are the query's own governance:
            // time spent here is time the query no longer has.
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    if let Some(g) = queued_guard.as_mut() {
                        g.release(&mut st);
                    }
                    let stats = ExecStats {
                        queue_wait_ms: started.elapsed().as_millis() as u32,
                        ..Default::default()
                    };
                    return Err(CubeError::Cancelled { stats });
                }
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    if let Some(g) = queued_guard.as_mut() {
                        g.release(&mut st);
                    }
                    let waited = started.elapsed();
                    let stats = ExecStats {
                        queue_wait_ms: waited.as_millis() as u32,
                        admission: AdmissionVerdict::Shed,
                        ..Default::default()
                    };
                    return Err(CubeError::ResourceExhausted {
                        resource: Resource::TimeMs,
                        limit: 0,
                        observed: waited.as_millis() as u64,
                        stats,
                    });
                }
            }
            failpoint("service::queue_wait")?;
            let (guard, _timeout) = self
                .cv
                .wait_timeout(st, QUEUE_POLL)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_small() -> ServiceConfig {
        ServiceConfig {
            max_concurrent: 2,
            cheap_reserved: 1,
            cheap_cells: 100,
            global_cells: 10_000,
            min_grant_cells: 10,
            queue_depth: 1,
        }
    }

    #[test]
    fn unlimited_config_admits_everything_for_free() {
        let ctrl = AdmissionController::new(ServiceConfig::default());
        for _ in 0..64 {
            let p = ctrl
                .admit(&QueryCost::new(1 << 40, 1 << 20), None, None)
                .unwrap();
            assert_eq!(p.granted_cells(), 0);
            std::mem::forget(p); // never released; unlimited mode holds no state
        }
        assert_eq!(ctrl.counters().admitted, 64);
    }

    #[test]
    fn slots_are_bounded_and_released() {
        let ctrl = AdmissionController::new(cfg_small());
        let cheap = QueryCost::new(10, 2);
        let a = ctrl.admit(&cheap, None, None).unwrap();
        let b = ctrl.admit(&cheap, None, None).unwrap();
        // Third concurrent query: queue is depth 1, deadline already
        // passed → typed TimeMs error, not a hang.
        let err = ctrl.admit(&cheap, Some(Instant::now()), None).unwrap_err();
        assert!(matches!(
            err,
            CubeError::ResourceExhausted {
                resource: Resource::TimeMs,
                ..
            }
        ));
        drop(a);
        drop(b);
        let c = ctrl.admit(&cheap, None, None).unwrap();
        drop(c);
    }

    #[test]
    fn oversized_heavy_query_sheds_immediately_with_no_retry_hint() {
        let ctrl = AdmissionController::new(cfg_small());
        // 10k-cell budget, 1M-cell ask: never admissible.
        let err = ctrl
            .admit(&QueryCost::new(1_000_000, 1), None, None)
            .unwrap_err();
        match err {
            CubeError::ResourceExhausted {
                resource, stats, ..
            } => {
                assert_eq!(resource, Resource::Cells);
                assert_eq!(stats.admission, AdmissionVerdict::Shed);
                assert_eq!(stats.retry_after_ms, 0);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(ctrl.counters().shed, 1);
    }

    #[test]
    fn full_queue_sheds_with_retry_hint() {
        let ctrl = AdmissionController::new(ServiceConfig {
            max_concurrent: 1,
            queue_depth: 0,
            ..cfg_small()
        });
        let cheap = QueryCost::new(10, 2);
        let _held = ctrl.admit(&cheap, None, None).unwrap();
        let err = ctrl.admit(&cheap, None, None).unwrap_err();
        match err {
            CubeError::ResourceExhausted {
                resource: Resource::AdmissionQueue,
                stats,
                ..
            } => {
                assert_eq!(stats.admission, AdmissionVerdict::Shed);
                assert!(stats.retry_after_ms > 0, "shed must carry a retry hint");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn cancellation_while_queued_is_typed() {
        let ctrl = AdmissionController::new(ServiceConfig {
            max_concurrent: 1,
            queue_depth: 4,
            ..cfg_small()
        });
        let _held = ctrl.admit(&QueryCost::new(10, 2), None, None).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = ctrl
            .admit(&QueryCost::new(10, 2), None, Some(&token))
            .unwrap_err();
        assert!(matches!(err, CubeError::Cancelled { .. }));
    }

    #[test]
    fn cheap_lane_bypasses_heavy_saturation() {
        let ctrl = AdmissionController::new(ServiceConfig {
            max_concurrent: 2,
            cheap_reserved: 1,
            cheap_cells: 100,
            global_cells: 1_000,
            min_grant_cells: 1,
            queue_depth: 0,
        });
        // Heavy query takes the single heavy-capable slot AND most budget.
        let heavy = ctrl.admit(&QueryCost::new(800, 1), None, None).unwrap();
        // Another heavy is shed (heavy cap = 1, queue depth 0)...
        assert!(ctrl.admit(&QueryCost::new(800, 1), None, None).is_err());
        // ...but a cheap query still gets its reserved slot, budget-exempt.
        let cheap = ctrl.admit(&QueryCost::new(20, 2), None, None).unwrap();
        drop(cheap);
        drop(heavy);
    }

    #[test]
    fn queued_query_admits_once_the_slot_frees() {
        let ctrl = AdmissionController::new(ServiceConfig {
            max_concurrent: 1,
            queue_depth: 2,
            ..cfg_small()
        });
        let held = ctrl.admit(&QueryCost::new(10, 2), None, None).unwrap();
        let ctrl2 = Arc::clone(&ctrl);
        let waiter = std::thread::spawn(move || {
            ctrl2
                .admit(&QueryCost::new(10, 2), None, None)
                .map(|p| p.verdict)
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        let verdict = waiter.join().unwrap().unwrap();
        assert_eq!(verdict, AdmissionVerdict::Queued);
        assert_eq!(ctrl.counters().queued, 1);
    }
}
