//! Recursive-descent parser for the SQL subset.
//!
//! The grammar for aggregation follows the paper's §3.2 proposal verbatim:
//!
//! ```text
//! GROUP BY <aggregation list>
//!          [ROLLUP <aggregation list>]
//!          [CUBE <aggregation list>]
//! ```
//!
//! where each aggregation-list element is an expression with an optional
//! `AS` alias — allowing §2's computed categories (`Day(Time) AS day`).
//! `GROUP BY GROUPING SETS ((...), ...)` is also accepted, since the
//! minimalist design of §3.4 was standardized that way.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::token::{tokenize, Keyword, Symbol, Token};
use dc_relation::Value;

/// Parse one statement.
pub fn parse(sql: &str) -> SqlResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_symbol(Symbol::Semicolon);
    if !p.at_end() {
        return Err(p.error("trailing input after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: &str) -> SqlError {
        let near = self
            .peek()
            .map(ToString::to_string)
            .unwrap_or_else(|| "<end of input>".into());
        SqlError::Parse {
            near,
            message: message.into(),
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == Some(&Token::Keyword(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> SqlResult<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {k:?}")))
        }
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if self.peek() == Some(&Token::Symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> SqlResult<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", Token::Symbol(s))))
        }
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    // ------------------------------------------------------- statements --

    fn parse_statement(&mut self) -> SqlResult<Statement> {
        if self.eat_keyword(Keyword::Set) {
            let name = self.expect_ident()?;
            // `SET CUBE_CACHE ON` reads better than `= 1`, so the `=` is
            // optional and ON/OFF are accepted alongside integers.
            self.eat_symbol(Symbol::Eq);
            let negative = self.eat_symbol(Symbol::Minus);
            let value = match self.next() {
                Some(Token::Int(n)) => {
                    if negative {
                        -n
                    } else {
                        n
                    }
                }
                Some(Token::Keyword(Keyword::On)) if !negative => 1,
                Some(Token::Ident(word)) if !negative && word.eq_ignore_ascii_case("OFF") => 0,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected an integer option value (or ON/OFF)"));
                }
            };
            return Ok(Statement::Set { name, value });
        }
        if self.eat_keyword(Keyword::Insert) {
            self.expect_keyword(Keyword::Into)?;
            let table = self.expect_ident()?;
            self.expect_keyword(Keyword::Values)?;
            let mut rows = Vec::new();
            loop {
                self.expect_symbol(Symbol::LParen)?;
                let mut vals = vec![self.parse_expr()?];
                while self.eat_symbol(Symbol::Comma) {
                    vals.push(self.parse_expr()?);
                }
                self.expect_symbol(Symbol::RParen)?;
                rows.push(vals);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.eat_keyword(Keyword::Delete) {
            self.expect_keyword(Keyword::From)?;
            let table = self.expect_ident()?;
            let where_clause = if self.eat_keyword(Keyword::Where) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete {
                table,
                where_clause,
            });
        }
        if self.eat_keyword(Keyword::Update) {
            let table = self.expect_ident()?;
            self.expect_keyword(Keyword::Set)?;
            let mut sets = Vec::new();
            loop {
                let column = self.expect_ident()?;
                self.expect_symbol(Symbol::Eq)?;
                sets.push((column, self.parse_expr()?));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            let where_clause = if self.eat_keyword(Keyword::Where) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                sets,
                where_clause,
            });
        }
        let explain = self.eat_keyword(Keyword::Explain);
        let mut stmt = self.parse_select_core()?;
        // UNION chain, left-to-right.
        while self.peek() == Some(&Token::Keyword(Keyword::Union)) {
            self.pos += 1;
            let all = self.eat_keyword(Keyword::All);
            let rhs = self.parse_select_core()?;
            // Append at the end of the chain.
            let mut cursor = &mut stmt;
            while cursor.union.is_some() {
                // cube-lint: allow(panic, is_some checked by the loop condition; NLL cannot see it)
                cursor = &mut cursor.union.as_mut().unwrap().1;
            }
            cursor.union = Some((all, Box::new(rhs)));
        }
        // ORDER BY / LIMIT bind to the whole union result.
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let descending = if self.eat_keyword(Keyword::Desc) {
                    true
                } else {
                    self.eat_keyword(Keyword::Asc);
                    false
                };
                stmt.order_by.push(OrderKey { expr, descending });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword(Keyword::Limit) {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => stmt.limit = Some(n as usize),
                _ => return Err(self.error("expected a non-negative LIMIT count")),
            }
        }
        Ok(if explain {
            Statement::Explain(stmt)
        } else {
            Statement::Select(stmt)
        })
    }

    fn parse_select_core(&mut self) -> SqlResult<SelectStmt> {
        self.expect_keyword(Keyword::Select)?;
        let mut items = Vec::new();
        loop {
            // Bare `*` select item (not COUNT's).
            let expr = if self.peek() == Some(&Token::Symbol(Symbol::Star)) {
                self.pos += 1;
                Expr::Star
            } else {
                self.parse_expr()?
            };
            let alias = if self.eat_keyword(Keyword::As) {
                Some(self.expect_ident()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_keyword(Keyword::From)?;
        let from = self.parse_table_ref()?;
        let where_clause = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            Some(self.parse_group_by()?)
        } else {
            None
        };
        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by: Vec::new(),
            limit: None,
            union: None,
        })
    }

    fn parse_table_ref(&mut self) -> SqlResult<TableRef> {
        let mut left = TableRef::Named(self.expect_ident()?);
        while self.eat_keyword(Keyword::Join) {
            let right = TableRef::Named(self.expect_ident()?);
            self.expect_keyword(Keyword::Using)?;
            self.expect_symbol(Symbol::LParen)?;
            let mut using = vec![self.expect_ident()?];
            while self.eat_symbol(Symbol::Comma) {
                using.push(self.expect_ident()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            left = TableRef::JoinUsing {
                left: Box::new(left),
                right: Box::new(right),
                using,
            };
        }
        Ok(left)
    }

    fn parse_group_by(&mut self) -> SqlResult<GroupByClause> {
        // GROUPING SETS ((a, b), (a), ()).
        if self.peek() == Some(&Token::Keyword(Keyword::Grouping))
            && self.peek2() == Some(&Token::Keyword(Keyword::Sets))
        {
            self.pos += 2;
            self.expect_symbol(Symbol::LParen)?;
            let mut sets = Vec::new();
            loop {
                self.expect_symbol(Symbol::LParen)?;
                let mut set = Vec::new();
                if self.peek() != Some(&Token::Symbol(Symbol::RParen)) {
                    loop {
                        set.push(self.parse_group_expr()?);
                        if !self.eat_symbol(Symbol::Comma) {
                            break;
                        }
                    }
                }
                self.expect_symbol(Symbol::RParen)?;
                sets.push(set);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(GroupByClause {
                grouping_sets: Some(sets),
                ..Default::default()
            });
        }

        // The §3.2 compound form.
        let mut clause = GroupByClause::default();
        if !matches!(
            self.peek(),
            Some(Token::Keyword(Keyword::Rollup)) | Some(Token::Keyword(Keyword::Cube))
        ) {
            clause.plain = self.parse_group_list()?;
        }
        if self.eat_keyword(Keyword::Rollup) {
            clause.rollup = self.parse_group_list()?;
        }
        if self.eat_keyword(Keyword::Cube) {
            clause.cube = self.parse_group_list()?;
        }
        if clause.plain.is_empty() && clause.rollup.is_empty() && clause.cube.is_empty() {
            return Err(self.error("empty GROUP BY clause"));
        }
        Ok(clause)
    }

    fn parse_group_list(&mut self) -> SqlResult<Vec<GroupExpr>> {
        let mut list = vec![self.parse_group_expr()?];
        while self.eat_symbol(Symbol::Comma) {
            list.push(self.parse_group_expr()?);
        }
        Ok(list)
    }

    fn parse_group_expr(&mut self) -> SqlResult<GroupExpr> {
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(GroupExpr { expr, alias })
    }

    // ------------------------------------------------------ expressions --

    fn parse_expr(&mut self) -> SqlResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> SqlResult<Expr> {
        if self.eat_keyword(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_predicate()
        }
    }

    fn parse_predicate(&mut self) -> SqlResult<Expr> {
        let lhs = self.parse_addsub()?;
        // IS [NOT] NULL
        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] BETWEEN / IN
        let negated = if self.peek() == Some(&Token::Keyword(Keyword::Not))
            && matches!(
                self.peek2(),
                Some(Token::Keyword(Keyword::Between)) | Some(Token::Keyword(Keyword::In))
            ) {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_keyword(Keyword::Between) {
            let low = self.parse_addsub()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_addsub()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword(Keyword::In) {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = vec![self.parse_addsub()?];
            while self.eat_symbol(Symbol::Comma) {
                list.push(self.parse_addsub()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.error("expected BETWEEN or IN after NOT"));
        }
        // Comparison.
        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Symbol::Neq)) => Some(BinOp::Neq),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Symbol::Lte)) => Some(BinOp::Lte),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Symbol::Gte)) => Some(BinOp::Gte),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_addsub()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_addsub(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Plus)) => BinOp::Add,
                Some(Token::Symbol(Symbol::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_muldiv()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_muldiv(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Star)) => BinOp::Mul,
                Some(Token::Symbol(Symbol::Slash)) => BinOp::Div,
                Some(Token::Symbol(Symbol::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> SqlResult<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> SqlResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::str(s)))
            }
            Some(Token::Keyword(Keyword::Null)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Keyword(Keyword::True)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Some(Token::Keyword(Keyword::False)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Some(Token::Keyword(Keyword::Grouping)) => {
                self.pos += 1;
                self.expect_symbol(Symbol::LParen)?;
                let inner = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(Expr::Grouping(Box::new(inner)))
            }
            Some(Token::Symbol(Symbol::LParen)) => {
                self.pos += 1;
                if self.peek() == Some(&Token::Keyword(Keyword::Select)) {
                    let sub = self.parse_select_core()?;
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let inner = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                // Function call?
                if self.peek() == Some(&Token::Symbol(Symbol::LParen)) {
                    self.pos += 1;
                    let distinct = self.eat_keyword(Keyword::Distinct);
                    let mut args = Vec::new();
                    if self.peek() == Some(&Token::Symbol(Symbol::Star)) {
                        self.pos += 1;
                        args.push(Expr::Star);
                    } else if self.peek() != Some(&Token::Symbol(Symbol::RParen)) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_symbol(Symbol::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Func {
                        name,
                        distinct,
                        args,
                    });
                }
                // Qualified column?
                if self.eat_symbol(Symbol::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            _ => Err(self.error("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected plain SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_paper_cube_query() {
        // §3's weather example, modulo the Country → Nation rename.
        let s = select(
            "SELECT day, nation, MAX(Temp)
             FROM Weather
             GROUP BY Day(Time) AS day
                 CUBE Nation(Latitude, Longitude) AS nation;",
        );
        let g = s.group_by.unwrap();
        assert_eq!(g.plain.len(), 1);
        assert_eq!(g.plain[0].alias.as_deref(), Some("day"));
        assert_eq!(g.cube.len(), 1);
        assert_eq!(g.cube[0].alias.as_deref(), Some("nation"));
    }

    #[test]
    fn parses_group_by_cube_list() {
        let s = select("SELECT Model, SUM(Sales) FROM Sales GROUP BY CUBE Model, Year, Color");
        let g = s.group_by.unwrap();
        assert!(g.plain.is_empty());
        assert_eq!(g.cube.len(), 3);
    }

    #[test]
    fn parses_figure_5_compound() {
        let s = select(
            "SELECT Manufacturer, SUM(price) AS Revenue FROM Sales
             GROUP BY Manufacturer
             ROLLUP Year(Time) AS Year, Month(Time) AS Month, Day(Time) AS Day
             CUBE Color, Model",
        );
        let g = s.group_by.unwrap();
        assert_eq!(g.plain.len(), 1);
        assert_eq!(g.rollup.len(), 3);
        assert_eq!(g.cube.len(), 2);
        assert_eq!(s.items[1].alias.as_deref(), Some("Revenue"));
    }

    #[test]
    fn parses_grouping_sets() {
        let s = select("SELECT a, b, SUM(x) FROM t GROUP BY GROUPING SETS ((a, b), (a), ())");
        let g = s.group_by.unwrap();
        let sets = g.grouping_sets.unwrap();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].len(), 2);
        assert!(sets[2].is_empty());
    }

    #[test]
    fn parses_union_chain_with_order_by() {
        // §2's hand-written roll-up shape.
        let s = select(
            "SELECT 'ALL', SUM(Sales) FROM Sales
             UNION SELECT Model, SUM(Sales) FROM Sales GROUP BY Model
             UNION ALL SELECT Model, Sales FROM Sales
             ORDER BY 1 DESC",
        );
        let (all1, u1) = s.union.as_ref().unwrap();
        assert!(!all1);
        let (all2, _) = u1.union.as_ref().unwrap();
        assert!(all2);
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].descending);
    }

    #[test]
    fn parses_where_between_in() {
        let s = select(
            "SELECT SUM(Sales) FROM Sales
             WHERE Model IN ('Ford', 'Chevy') AND Year BETWEEN 1990 AND 1992
               AND Color IS NOT NULL AND NOT (Units < 0)",
        );
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_scalar_subquery() {
        let s = select(
            "SELECT Model, SUM(Sales) / (SELECT SUM(Sales) FROM Sales) FROM Sales GROUP BY Model",
        );
        match &s.items[1].expr {
            Expr::Binary {
                op: BinOp::Div,
                rhs,
                ..
            } => {
                assert!(matches!(**rhs, Expr::ScalarSubquery(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_grouping_function_and_count_star() {
        let s = select(
            "SELECT Model, COUNT(*), COUNT(DISTINCT Color), GROUPING(Model)
             FROM Sales GROUP BY CUBE Model",
        );
        assert!(matches!(&s.items[1].expr, Expr::Func { args, .. } if args == &[Expr::Star]));
        assert!(matches!(
            &s.items[2].expr,
            Expr::Func { distinct: true, .. }
        ));
        assert!(matches!(&s.items[3].expr, Expr::Grouping(_)));
    }

    #[test]
    fn parses_join_using() {
        let s = select(
            "SELECT department.name, SUM(sales) FROM sales JOIN department
             USING (department_number) GROUP BY department_number",
        );
        assert!(matches!(s.from, TableRef::JoinUsing { .. }));
        match &s.items[0].expr {
            Expr::Column {
                qualifier: Some(q),
                name,
            } => {
                assert_eq!(q, "department");
                assert_eq!(name, "name");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_name_the_offender() {
        match parse("SELECT FROM t") {
            Err(SqlError::Parse { near, .. }) => assert_eq!(near, "From"),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("SELECT a FROM t GROUP BY").is_err());
        assert!(parse("SELECT a FROM t WHERE a NOT 3").is_err());
        assert!(parse("SELECT a FROM t extra junk").is_err());
    }

    #[test]
    fn insert_parses_multi_row_values() {
        let stmt =
            parse("INSERT INTO sales VALUES ('Ford', 1995, 10), ('Chevy', 1994, -5);").unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!("expected INSERT, got {stmt:?}");
        };
        assert_eq!(table, "sales");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 3);
        assert_eq!(rows[0][0], Expr::Literal(Value::Str("Ford".into())));
        // Negative literals come through the unary-minus expression path.
        assert!(matches!(rows[1][2], Expr::Neg(_)));
    }

    #[test]
    fn delete_parses_with_and_without_predicate() {
        let stmt = parse("DELETE FROM sales WHERE model = 'Ford'").unwrap();
        let Statement::Delete {
            table,
            where_clause,
        } = stmt
        else {
            panic!("expected DELETE, got {stmt:?}");
        };
        assert_eq!(table, "sales");
        assert!(matches!(
            where_clause,
            Some(Expr::Binary { op: BinOp::Eq, .. })
        ));
        assert!(matches!(
            parse("DELETE FROM sales").unwrap(),
            Statement::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn update_parses_set_list_and_predicate() {
        let stmt =
            parse("UPDATE sales SET units = units + 1, year = 1996 WHERE model = 'Ford'").unwrap();
        let Statement::Update {
            table,
            sets,
            where_clause,
        } = stmt
        else {
            panic!("expected UPDATE, got {stmt:?}");
        };
        assert_eq!(table, "sales");
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].0, "units");
        assert!(matches!(sets[0].1, Expr::Binary { op: BinOp::Add, .. }));
        assert_eq!(sets[1].0, "year");
        assert_eq!(sets[1].1, Expr::Literal(Value::Int(1996)));
        assert!(matches!(
            where_clause,
            Some(Expr::Binary { op: BinOp::Eq, .. })
        ));
        assert!(matches!(
            parse("UPDATE sales SET units = 0").unwrap(),
            Statement::Update {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn malformed_dml_is_rejected() {
        assert!(parse("INSERT sales VALUES (1)").is_err()); // missing INTO
        assert!(parse("INSERT INTO sales (1, 2)").is_err()); // missing VALUES
        assert!(parse("INSERT INTO sales VALUES 1, 2").is_err()); // bare list
        assert!(parse("INSERT INTO sales VALUES ()").is_err()); // empty row
        assert!(parse("DELETE sales").is_err()); // missing FROM
        assert!(parse("DELETE FROM sales WHERE").is_err()); // dangling WHERE
        assert!(parse("UPDATE sales units = 1").is_err()); // missing SET
        assert!(parse("UPDATE sales SET").is_err()); // empty SET list
        assert!(parse("UPDATE sales SET units 1").is_err()); // missing =
        assert!(parse("UPDATE sales SET units = 1 WHERE").is_err()); // dangling WHERE
    }

    #[test]
    fn operator_precedence() {
        let s = select("SELECT a + b * c FROM t");
        // a + (b * c)
        match &s.items[0].expr {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = select("SELECT a OR b AND c FROM t");
        match &s.items[0].expr {
            Expr::Binary {
                op: BinOp::Or, rhs, ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
