//! The query engine: shared catalog, planner, and executor.
//!
//! Aggregation queries are planned onto [`datacube::CubeQuery`], so a SQL
//! `GROUP BY a ROLLUP b CUBE c` runs through exactly the operator algebra
//! and §5 algorithms of the paper. The SELECT list is then computed over
//! the cube *relation* — which is the paper's point: the cube composes
//! with projection, HAVING, ORDER BY, UNION, and decoration like any
//! other table.
//!
//! Concurrency shape (see DESIGN.md "Concurrent serving"): the [`Engine`]
//! owns the [`SharedCatalog`] and the [`AdmissionController`] and embeds
//! one default [`Session`] so the single-caller API is unchanged.
//! [`Engine::session`] mints further sessions — each with private
//! options and cancel token — that execute against catalog *snapshots*,
//! so no lock is held while a query runs. The stateless executor is
//! [`QueryRuntime`]: one per statement, built from a snapshot plus the
//! session's effective limits.

use crate::admission::{AdmissionController, ServiceConfig};
use crate::ast::*;
use crate::cache::CubeCache;
use crate::catalog::{CatalogSnapshot, SharedCatalog};
use crate::error::{SqlError, SqlResult};
use crate::eval::{eval, infer_type, EvalContext};
use crate::scalar::ScalarFn;
use crate::session::Session;
use datacube::{
    AggSpec, Algorithm, AncestorRequest, CancelToken, CompoundSpec, CubeQuery, Dimension,
    ExecLimits, GroupingSet,
};
use dc_aggregate::AggRef;
use dc_relation::{ColumnDef, DataType, Row, Schema, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A SQL engine over an in-memory catalog, shareable across threads.
///
/// ```
/// use dc_sql::Engine;
/// use dc_relation::{row, DataType, Schema, Table};
///
/// let mut engine = Engine::new();
/// let schema = Schema::from_pairs(&[
///     ("model", DataType::Str),
///     ("units", DataType::Int),
/// ]);
/// let sales = Table::new(schema, vec![
///     row!["Chevy", 50],
///     row!["Ford", 60],
/// ]).unwrap();
/// engine.register_table("Sales", sales).unwrap();
///
/// let out = engine
///     .execute("SELECT model, SUM(units) AS total FROM Sales GROUP BY CUBE model")
///     .unwrap();
/// assert_eq!(out.len(), 3); // Chevy, Ford, and the ALL row
/// ```
pub struct Engine {
    catalog: SharedCatalog,
    admission: Arc<AdmissionController>,
    cache: Arc<CubeCache>,
    /// The engine's own default session, so the single-caller API
    /// (`execute`, `set_option`, `set_cancel_token`) works unchanged.
    session: Session,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the built-in aggregate and scalar functions and no
    /// admission limits — identical to pre-service behaviour.
    pub fn new() -> Self {
        Engine::with_service(ServiceConfig::default())
    }

    /// An engine governed by service-level admission control: a global
    /// cell budget apportioned across in-flight queries, bounded
    /// queueing, load shedding, and a reserved cheap lane.
    pub fn with_service(cfg: ServiceConfig) -> Self {
        let catalog = SharedCatalog::new();
        let admission = AdmissionController::new(cfg);
        let cache = CubeCache::new(Arc::clone(&admission));
        let session = Session::new(catalog.clone(), Arc::clone(&admission), Arc::clone(&cache));
        Engine {
            catalog,
            admission,
            cache,
            session,
        }
    }

    /// Mint a new session sharing this engine's catalog, admission
    /// controller, and lattice cache, with its own options and cancel
    /// token. Sessions are `Send + Sync`; hand one to each thread or
    /// connection.
    pub fn session(&self) -> Session {
        Session::new(
            self.catalog.clone(),
            Arc::clone(&self.admission),
            Arc::clone(&self.cache),
        )
    }

    /// The shared admission controller (counters for observability).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// The engine-wide lattice cache (enable/disable, budget, counters).
    pub fn cube_cache(&self) -> &Arc<CubeCache> {
        &self.cache
    }

    /// Owned handles to the shared service state, for the server's accept
    /// thread to mint per-connection sessions without borrowing `self`.
    pub(crate) fn service_parts(
        &self,
    ) -> (SharedCatalog, Arc<AdmissionController>, Arc<CubeCache>) {
        (
            self.catalog.clone(),
            Arc::clone(&self.admission),
            Arc::clone(&self.cache),
        )
    }

    /// Register a base table (case-insensitive name).
    pub fn register_table(&mut self, name: impl AsRef<str>, table: Table) -> SqlResult<()> {
        self.catalog.with_write(|c| c.register_table(name, table))
    }

    /// Replace a registered table's contents under the same name — the
    /// maintenance path for `MaterializedCube`-backed tables. Bumps the
    /// catalog version and eagerly invalidates cached subcube views, so a
    /// query admitted after this call can never see a stale cell.
    pub fn update_table(&self, name: impl AsRef<str>, table: Table) -> SqlResult<()> {
        let name = name.as_ref();
        self.catalog.with_write(|c| c.update_table(name, table))?;
        self.cache.invalidate_table(name);
        Ok(())
    }

    /// Register a user-defined aggregate (the §1.2 extension mechanism).
    pub fn register_aggregate(&mut self, f: AggRef) -> SqlResult<()> {
        self.catalog.with_write(|c| c.register_aggregate(f))
    }

    /// Register a scalar function (e.g. the paper's `Nation(lat, lon)`).
    pub fn register_scalar(&mut self, f: ScalarFn) -> SqlResult<()> {
        self.catalog.with_write(|c| c.register_scalar(f))
    }

    /// A registered table, by name.
    pub fn table(&self, name: &str) -> SqlResult<Arc<Table>> {
        self.catalog.snapshot().table(name)
    }

    /// Parse and execute one statement on the engine's default session.
    pub fn execute(&self, sql: &str) -> SqlResult<Table> {
        self.session.execute(sql)
    }

    /// Set one execution option on the engine's default session (see
    /// [`Session::set_option`]). Other sessions are unaffected.
    pub fn set_option(&self, name: &str, value: i64) -> SqlResult<()> {
        self.session.set_option(name, value)
    }

    /// Attach (or clear, with `None`) a cancellation token on the
    /// engine's default session (see [`Session::set_cancel_token`]).
    pub fn set_cancel_token(&self, token: Option<CancelToken>) {
        self.session.set_cancel_token(token)
    }
}

/// The stateless statement executor: a catalog snapshot plus the
/// session's effective execution parameters. Built per statement by
/// [`Session`]; holds no locks, so concurrent runtimes never contend.
pub(crate) struct QueryRuntime {
    pub(crate) snap: CatalogSnapshot,
    pub(crate) limits: ExecLimits,
    pub(crate) threads: u64,
    pub(crate) vectorized: bool,
    /// The engine's lattice cache, when the session has `CUBE_CACHE ON`
    /// (`None` both when the option is off and for EXPLAIN, which must
    /// not touch traffic counters).
    pub(crate) cache: Option<Arc<CubeCache>>,
    /// Set by `exec_aggregate` when a statement was answered by
    /// re-aggregating a materialized ancestor: `(hit, ancestor_bits)`.
    /// The session folds this into its last-statement [`ExecStats`].
    pub(crate) cache_touch: std::cell::Cell<(bool, u32)>,
}

/// How one aggregate statement maps onto the lattice cache, when it is
/// eligible at all. `dim_keys`/`agg_keys` are the canonical base-column
/// names the cache indexes views by ([`crate::cache::CubeCache`]); `sets`
/// is the statement's grouping-set family over the query's dimension
/// order, ready for [`datacube::CachedView::answer`].
struct CachePlan {
    table: String,
    version: u64,
    dim_keys: Vec<String>,
    agg_keys: Vec<String>,
    sets: Vec<GroupingSet>,
}

impl QueryRuntime {
    /// Is `name` an aggregate in this snapshot (registry built-ins, UDAs,
    /// or the parameterized MAXN/MINN/PERCENTILE family)?
    fn is_aggregate_name(&self, name: &str) -> bool {
        self.snap.aggs.get(name).is_ok()
            || matches!(name.to_uppercase().as_str(), "MAXN" | "MINN" | "PERCENTILE")
    }

    /// `EXPLAIN SELECT ...`: a one-column relation describing the plan —
    /// which tables are scanned, the grouping-set lattice, and how each
    /// aggregate's §5 taxonomy routes it (cascade vs 2^N).
    pub(crate) fn explain_select(&self, stmt: &SelectStmt) -> SqlResult<Table> {
        let mut lines: Vec<String> = Vec::new();
        let mut cursor = Some(stmt);
        let mut block = 0;
        while let Some(sel) = cursor {
            if block > 0 {
                lines.push(format!("UNION branch {block}:"));
            }
            lines.push(format!("  scan: {}", describe_from(&sel.from)));
            if sel.where_clause.is_some() {
                lines.push("  filter: WHERE (three-valued; unknown rows dropped)".into());
            }
            if let Some(g) = &sel.group_by {
                let n_sets = if let Some(sets) = &g.grouping_sets {
                    lines.push(format!(
                        "  aggregate: GROUPING SETS over {} dimension(s)",
                        g.all_exprs().len()
                    ));
                    sets.len()
                } else {
                    let (p, r, c) = (g.plain.len(), g.rollup.len(), g.cube.len());
                    lines.push(format!(
                        "  aggregate: GROUP BY {p} dim(s), ROLLUP {r}, CUBE {c}"
                    ));
                    (r + 1) << c
                };
                lines.push(format!("    grouping sets: {n_sets}"));
                for g in g.all_exprs() {
                    lines.push(format!("    dimension: {}", g.output_name()));
                }
            }
            let is_agg = |n: &str| self.is_aggregate_name(n);
            let mut calls = Vec::new();
            for it in &sel.items {
                collect_aggregates(&it.expr, &is_agg, &mut calls);
            }
            if let Some(h) = &sel.having {
                collect_aggregates(h, &is_agg, &mut calls);
            }
            let mut any_holistic = false;
            for call in &calls {
                if let Expr::Func {
                    name,
                    distinct,
                    args,
                } = call
                {
                    let kind = if *distinct {
                        self.snap.aggs.get("COUNT DISTINCT")?.kind()
                    } else if matches!(args.first(), Some(Expr::Star)) {
                        self.snap.aggs.get("COUNT(*)")?.kind()
                    } else if let Some(param) = parameterized_aggregate(name, args)? {
                        param.kind()
                    } else {
                        self.snap.aggs.get(name)?.kind()
                    };
                    any_holistic |= kind == dc_aggregate::AggKind::Holistic;
                    lines.push(format!("    aggregate fn: {} [{kind:?}]", call.canonical()));
                }
            }
            if !calls.is_empty() {
                lines.push(format!(
                    "    algorithm: {}",
                    if any_holistic {
                        "2^N (holistic aggregate present, §5)"
                    } else {
                        "from-core cascade (Iter_super, smallest-Ci parent)"
                    }
                ));
            }
            if sel.having.is_some() {
                lines.push("  filter: HAVING over the cube relation".into());
            }
            cursor = sel.union.as_ref().map(|(_, rhs)| rhs.as_ref());
            block += 1;
        }
        if !stmt.order_by.is_empty() {
            lines.push(format!("  sort: ORDER BY {} key(s)", stmt.order_by.len()));
        }
        if let Some(n) = stmt.limit {
            lines.push(format!("  limit: {n}"));
        }
        let schema = Schema::new(vec![ColumnDef::new("plan", DataType::Str)])?;
        let mut out = Table::empty(schema);
        for l in lines {
            out.push_unchecked(Row::new(vec![Value::str(l)]));
        }
        Ok(out)
    }

    // ---------------------------------------------------------- executor --

    pub(crate) fn exec_select(&self, stmt: &SelectStmt) -> SqlResult<Table> {
        let mut result = self.exec_single(stmt)?;
        let mut cursor = &stmt.union;
        while let Some((all, rhs)) = cursor {
            let r = self.exec_single(rhs)?;
            result = if *all {
                result.union_all(&r)?
            } else {
                result.union(&r)?
            };
            cursor = &rhs.union;
        }
        self.apply_order_limit(result, stmt)
    }

    fn exec_single(&self, stmt: &SelectStmt) -> SqlResult<Table> {
        let base = self.resolve_from(&stmt.from)?;

        // Resolve scalar subqueries everywhere up front (uncorrelated).
        let items: Vec<SelectItem> = stmt
            .items
            .iter()
            .map(|it| {
                Ok(SelectItem {
                    expr: self.resolve_subqueries(&it.expr)?,
                    alias: it.alias.clone(),
                })
            })
            .collect::<SqlResult<_>>()?;
        let where_clause = stmt
            .where_clause
            .as_ref()
            .map(|e| self.resolve_subqueries(e))
            .transpose()?;
        let having = stmt
            .having
            .as_ref()
            .map(|e| self.resolve_subqueries(e))
            .transpose()?;

        // WHERE.
        let filtered = match &where_clause {
            Some(pred) => {
                let ctx = EvalContext::base(base.schema(), &self.snap.scalars);
                // Validate once so unknown columns error instead of
                // silently filtering everything.
                if let Some(first) = base.rows().first() {
                    eval(pred, first, &ctx)?;
                } else {
                    infer_type(pred, base.schema(), &self.snap.scalars, &HashMap::new())?;
                }
                let mut kept = Table::empty(base.schema().clone());
                for row in base.rows() {
                    if eval(pred, row, &ctx)? == Value::Bool(true) {
                        kept.push_unchecked(row.clone());
                    }
                }
                Arc::new(kept)
            }
            None => base,
        };

        let is_agg = |n: &str| self.is_aggregate_name(n);
        let has_aggregates = items.iter().any(|it| it.expr.contains_aggregate(&is_agg))
            || having
                .as_ref()
                .is_some_and(|h| h.contains_aggregate(&is_agg));

        if stmt.group_by.is_some() || has_aggregates {
            self.exec_aggregate(stmt, &items, having.as_ref(), filtered)
        } else {
            if having.is_some() {
                return Err(SqlError::Plan(
                    "HAVING requires GROUP BY or aggregates".into(),
                ));
            }
            self.exec_projection(&items, filtered)
        }
    }

    /// Plain projection (no aggregation).
    fn exec_projection(&self, items: &[SelectItem], input: Arc<Table>) -> SqlResult<Table> {
        // SELECT * expands to all input columns.
        if items.len() == 1 && items[0].expr == Expr::Star {
            return Ok(Arc::try_unwrap(input).unwrap_or_else(|shared| (*shared).clone()));
        }
        let ctx = EvalContext::base(input.schema(), &self.snap.scalars);
        // Each item is either a per-row expression or an ordered aggregate
        // over the column of its argument (§1.2's Red Brick functions work
        // directly on ordered selections too).
        let mut kinds: Vec<Option<OrderedKind>> = Vec::with_capacity(items.len());
        let mut exprs: Vec<Expr> = Vec::with_capacity(items.len());
        let mut types = Vec::with_capacity(items.len());
        for it in items {
            if it.expr == Expr::Star {
                return Err(SqlError::Plan("'*' must be the only select item".into()));
            }
            if let Some((kind, arg)) = ordered_aggregate(&it.expr)? {
                types.push(kind.output_type());
                kinds.push(Some(kind));
                exprs.push(arg);
            } else {
                types.push(infer_type(
                    &it.expr,
                    input.schema(),
                    &self.snap.scalars,
                    &HashMap::new(),
                )?);
                kinds.push(None);
                exprs.push(it.expr.clone());
            }
        }
        let names = uniquify(items.iter().map(SelectItem::output_name).collect());
        let cols = names
            .into_iter()
            .zip(types)
            .map(|(n, t)| ColumnDef::new(n, t))
            .collect();
        let schema = Schema::new(cols)?;

        let mut columns: Vec<Vec<Value>> = exprs
            .iter()
            .map(|_| Vec::with_capacity(input.len()))
            .collect();
        for row in input.rows() {
            for (e, col) in exprs.iter().zip(columns.iter_mut()) {
                col.push(eval(e, row, &ctx)?);
            }
        }
        for (kind, col) in kinds.iter().zip(columns.iter_mut()) {
            if let Some(k) = kind {
                *col = k.apply(col)?;
            }
        }
        let mut out = Table::empty(schema);
        for i in 0..input.len() {
            out.push_unchecked(Row::new(columns.iter().map(|c| c[i].clone()).collect()));
        }
        Ok(out)
    }

    /// Decide whether this aggregate statement can be served by (and feed)
    /// the lattice cache. `None` disqualifies it: no cache attached, a
    /// join or WHERE clause (cached views cover whole base tables only),
    /// computed dimensions or aggregate arguments (views are keyed by base
    /// column names), an aggregate outside the rewrite-legal set (see
    /// [`datacube::rewritable`]), or a lattice wider than
    /// [`GroupingSet::MAX_DIMS`].
    fn plan_cache(
        &self,
        stmt: &SelectStmt,
        clause: &GroupByClause,
        group_exprs: &[&GroupExpr],
        agg_specs: &[AggSpec],
        arg_columns: &HashMap<String, String>,
    ) -> Option<CachePlan> {
        self.cache.as_ref()?;
        let TableRef::Named(table) = &stmt.from else {
            return None;
        };
        if stmt.where_clause.is_some() || !arg_columns.is_empty() {
            return None;
        }
        let dim_keys: Vec<String> = group_exprs
            .iter()
            .map(|g| match &g.expr {
                Expr::Column {
                    qualifier: None,
                    name,
                } => Some(name.clone()),
                _ => None,
            })
            .collect::<Option<_>>()?;
        if !agg_specs.iter().all(|s| datacube::rewritable(&s.func)) {
            return None;
        }
        let agg_keys: Vec<String> = agg_specs
            .iter()
            .map(|s| match &s.input {
                Some(col) => format!("{}({})", s.func.name(), col),
                None => s.func.name().to_string(),
            })
            .collect();
        let sets: Vec<GroupingSet> = match &clause.grouping_sets {
            Some(sets) => {
                let index_of = |g: &GroupExpr| {
                    group_exprs
                        .iter()
                        .position(|e| e.output_name() == g.output_name())
                };
                let mut out = Vec::with_capacity(sets.len());
                for s in sets {
                    let idxs: Vec<usize> = s.iter().map(index_of).collect::<Option<_>>()?;
                    out.push(GroupingSet::from_dims(&idxs).ok()?);
                }
                out
            }
            None => {
                // Only the block *lengths* drive the compound expansion, so
                // placeholder dimensions reproduce the statement's lattice.
                let ph = |n: usize| {
                    (0..n)
                        .map(|i| Dimension::column(format!("d{i}")))
                        .collect::<Vec<_>>()
                };
                CompoundSpec::new()
                    .group_by(ph(clause.plain.len()))
                    .rollup(ph(clause.rollup.len()))
                    .cube(ph(clause.cube.len()))
                    .grouping_sets()
                    .ok()?
            }
        };
        Some(CachePlan {
            table: table.clone(),
            version: self.snap.table_version(table),
            dim_keys,
            agg_keys,
            sets,
        })
    }

    /// The aggregation pipeline: working table → CubeQuery → select-list
    /// evaluation over the cube relation.
    fn exec_aggregate(
        &self,
        stmt: &SelectStmt,
        items: &[SelectItem],
        having: Option<&Expr>,
        input: Arc<Table>,
    ) -> SqlResult<Table> {
        let empty_clause = GroupByClause::default();
        let clause = stmt.group_by.as_ref().unwrap_or(&empty_clause);

        // ---- dimensions ------------------------------------------------
        let group_exprs: Vec<&GroupExpr> = clause.all_exprs();
        let mut dim_names: Vec<String> = Vec::new();
        let mut dim_types: Vec<DataType> = Vec::new();
        for g in &group_exprs {
            let name = g.output_name();
            if dim_names.contains(&name) {
                return Err(SqlError::Plan(format!("duplicate grouping column: {name}")));
            }
            dim_types.push(infer_type(
                &g.expr,
                input.schema(),
                &self.snap.scalars,
                &HashMap::new(),
            )?);
            dim_names.push(name);
        }

        // ---- aggregates -------------------------------------------------
        let is_agg = |n: &str| self.is_aggregate_name(n);
        let mut agg_calls: Vec<Expr> = Vec::new();
        for it in items {
            collect_aggregates(&it.expr, &is_agg, &mut agg_calls);
        }
        if let Some(h) = having {
            collect_aggregates(h, &is_agg, &mut agg_calls);
        }

        // ---- working table: computed aggregate arguments -----------------
        // Shared with the snapshot until a computed argument forces a
        // widened copy — plain-column statements (and cache hits) never
        // materialize a private copy of the base rows.
        let mut working = Arc::clone(&input);
        let mut arg_columns: HashMap<String, String> = HashMap::new(); // canonical → col
        for (k, call) in agg_calls.iter().enumerate() {
            let Expr::Func { args, .. } = call else {
                // cube-lint: allow(panic, collect_aggregates only collects Func expressions)
                unreachable!()
            };
            let arg = args.first();
            match arg {
                None => {
                    return Err(SqlError::Plan(format!(
                        "aggregate needs an argument: {}",
                        call.canonical()
                    )))
                }
                Some(Expr::Star) | Some(Expr::Column { .. }) => {}
                Some(expr) => {
                    let canon = expr.canonical();
                    if let std::collections::hash_map::Entry::Vacant(e) = arg_columns.entry(canon) {
                        let col_name = format!("__arg{k}");
                        let ty =
                            infer_type(expr, input.schema(), &self.snap.scalars, &HashMap::new())?;
                        let ctx = EvalContext::base(input.schema(), &self.snap.scalars);
                        let mut schema = working.schema().clone();
                        schema.push(ColumnDef::new(&col_name, ty))?;
                        let mut next = Table::empty(schema);
                        for (row, orig) in working.rows().iter().zip(input.rows()) {
                            let v = eval(expr, orig, &ctx)?;
                            next.push_unchecked(Row::new(
                                row.values().iter().cloned().chain([v]).collect(),
                            ));
                        }
                        working = Arc::new(next);
                        e.insert(col_name);
                    }
                }
            }
        }

        let mut agg_specs: Vec<AggSpec> = Vec::new();
        for (k, call) in agg_calls.iter().enumerate() {
            let Expr::Func {
                name,
                distinct,
                args,
            } = call
            else {
                // cube-lint: allow(panic, collect_aggregates only collects Func expressions)
                unreachable!()
            };
            let out_name = format!("__agg{k}");
            let spec = match (args.first(), *distinct) {
                (Some(Expr::Star), false) if name.eq_ignore_ascii_case("count") => {
                    AggSpec::star(self.snap.aggs.get("COUNT(*)")?).with_name(&out_name)
                }
                (Some(Expr::Star), _) => {
                    return Err(SqlError::Plan(format!(
                        "'*' is only valid in COUNT(*): {}",
                        call.canonical()
                    )))
                }
                (Some(arg), dist) => {
                    let func = if dist {
                        if !name.eq_ignore_ascii_case("count") {
                            return Err(SqlError::Plan(format!(
                                "DISTINCT is only supported on COUNT: {}",
                                call.canonical()
                            )));
                        }
                        if args.len() != 1 {
                            return Err(SqlError::Plan(format!(
                                "COUNT(DISTINCT ...) takes one argument: {}",
                                call.canonical()
                            )));
                        }
                        self.snap.aggs.get("COUNT DISTINCT")?
                    } else if let Some(param) = parameterized_aggregate(name, args)? {
                        param
                    } else {
                        if args.len() != 1 {
                            return Err(SqlError::Plan(format!(
                                "aggregates take one argument: {}",
                                call.canonical()
                            )));
                        }
                        self.snap.aggs.get(name)?
                    };
                    let input_col: String = match arg {
                        Expr::Column { name, .. } => {
                            working.schema().index_of(name)?; // validate
                            name.clone()
                        }
                        other => arg_columns[&other.canonical()].clone(),
                    };
                    AggSpec::new(func, input_col).with_name(&out_name)
                }
                // cube-lint: allow(panic, the argument-less case errored in the arg pass above)
                (None, _) => unreachable!("checked above"),
            };
            agg_specs.push(spec);
        }
        if agg_specs.is_empty() {
            return Err(SqlError::Plan(
                "GROUP BY queries need at least one aggregate in the select list".into(),
            ));
        }

        // ---- lattice cache: ancestor rewrite ------------------------------
        // If the statement is a plain scan of a registered table with
        // plain-column dimensions and rewrite-legal aggregates, try to
        // answer it from a materialized subcube instead of the base rows.
        let cache_plan = self.plan_cache(stmt, clause, &group_exprs, &agg_specs, &arg_columns);
        let mut cached_answer: Option<Table> = None;
        if let (Some(plan), Some(cache)) = (&cache_plan, &self.cache) {
            if let Some(hit) =
                cache.lookup(&plan.table, plan.version, &plan.dim_keys, &plan.agg_keys)?
            {
                let bpc =
                    datacube::exec::estimate_bytes_per_cell(group_exprs.len(), agg_specs.len());
                let ctx = datacube::ExecContext::new(&self.limits, bpc);
                let dim_name_refs: Vec<&str> = dim_names.iter().map(String::as_str).collect();
                let agg_name_refs: Vec<&str> = agg_specs.iter().map(|s| &*s.output).collect();
                let answered = hit.view.answer(
                    &AncestorRequest {
                        dim_map: &hit.dim_map,
                        dim_names: &dim_name_refs,
                        agg_map: &hit.agg_map,
                        agg_names: &agg_name_refs,
                        sets: &plan.sets,
                    },
                    &ctx,
                )?;
                self.cache_touch.set((true, hit.ancestor_bits));
                cached_answer = Some(answered);
            }
        }
        let from_cache = cached_answer.is_some();

        // ---- run the cube operator ---------------------------------------
        let make_dim = |g: &GroupExpr, name: &str, ty: DataType| -> Dimension {
            match &g.expr {
                Expr::Column {
                    name: col,
                    qualifier: None,
                } if col == name => Dimension::column(col),
                expr => {
                    let expr = expr.clone();
                    let schema = working.schema().clone();
                    let scalars = self.snap.scalars.clone();
                    Dimension::computed(name, ty, move |row: &Row| {
                        let ctx = EvalContext::base(&schema, &scalars);
                        eval(&expr, row, &ctx).unwrap_or(Value::Null)
                    })
                }
            }
        };

        // Session governance: the effective limits (session budgets, the
        // remaining deadline share, and the admission grant) plus the
        // thread count apply to every cube run of this statement.
        let mut query = agg_specs
            .iter()
            .fold(CubeQuery::new(), |q, spec| q.aggregate(spec.clone()))
            .limits(self.limits.clone())
            .vectorized(self.vectorized);
        if self.threads > 0 {
            query = query.algorithm(Algorithm::Parallel {
                threads: self.threads as usize,
            });
        }

        let mut cube = if let Some(answered) = cached_answer {
            answered
        } else if let Some(sets) = &clause.grouping_sets {
            let dims: Vec<Dimension> = group_exprs
                .iter()
                .zip(dim_names.iter().zip(dim_types.iter()))
                .map(|(g, (n, t))| make_dim(g, n, *t))
                .collect();
            let index_of = |g: &GroupExpr| {
                dim_names
                    .iter()
                    .position(|n| *n == g.output_name())
                    .ok_or_else(|| {
                        SqlError::Plan(format!(
                            "GROUPING SETS references an expression not in the \
                             dimension list: {}",
                            g.output_name()
                        ))
                    })
            };
            let set_indices: Vec<Vec<usize>> = sets
                .iter()
                .map(|s| s.iter().map(index_of).collect())
                .collect::<SqlResult<_>>()?;
            query
                .dimensions(dims)
                .grouping_sets(&working, &set_indices)?
        } else {
            let mut name_iter = dim_names.iter().zip(dim_types.iter());
            let mut block = |exprs: &[GroupExpr]| -> SqlResult<Vec<Dimension>> {
                exprs
                    .iter()
                    .map(|g| {
                        let (n, t) = name_iter.next().ok_or_else(|| {
                            SqlError::Plan(format!(
                                "internal: no registered dimension name for group \
                                 expression {}",
                                g.expr.canonical()
                            ))
                        })?;
                        Ok(make_dim(g, n, *t))
                    })
                    .collect()
            };
            let spec = CompoundSpec::new()
                .group_by(block(&clause.plain)?)
                .rollup(block(&clause.rollup)?)
                .cube(block(&clause.cube)?);
            query.compound(&working, &spec)?
        };

        // Cache miss on an eligible statement: materialize its finest
        // grouping as a new view for future ancestors. Best-effort —
        // population is budget-gated and its errors never fail the query
        // (the answer above is already correct from the base scan).
        if !from_cache {
            if let (Some(plan), Some(cache)) = (&cache_plan, &self.cache) {
                let vdims: Vec<Dimension> = plan.dim_keys.iter().map(Dimension::column).collect();
                let vaggs: Vec<AggSpec> = agg_specs
                    .iter()
                    .map(|s| match &s.input {
                        Some(col) => AggSpec::new(Arc::clone(&s.func), &**col),
                        None => AggSpec::star(Arc::clone(&s.func)),
                    })
                    .collect();
                if let Ok(view) = datacube::CachedView::build(&working, &vdims, &vaggs) {
                    let _ = cache.populate(
                        &plan.table,
                        plan.version,
                        plan.dim_keys.clone(),
                        plan.agg_keys.clone(),
                        view,
                    );
                }
            }
        }

        // Global aggregate over an empty table: SQL returns one row of
        // empty-set aggregates (COUNT = 0, SUM = NULL, ...).
        if group_exprs.is_empty() && cube.is_empty() {
            let vals: Vec<Value> = agg_specs
                .iter()
                .map(|s| datacube::exec::guard(s.func.name(), || s.func.init().final_value()))
                .collect::<Result<_, _>>()?;
            cube.push_unchecked(Row::new(vals));
        }

        // ---- result context ----------------------------------------------
        let mut subs: HashMap<String, usize> = HashMap::new();
        let mut sub_types: HashMap<String, DataType> = HashMap::new();
        for (i, (g, ty)) in group_exprs.iter().zip(dim_types.iter()).enumerate() {
            subs.insert(g.expr.canonical(), i);
            sub_types.insert(g.expr.canonical(), *ty);
            if let Some(a) = &g.alias {
                subs.insert(a.clone(), i);
                sub_types.insert(a.clone(), *ty);
            }
        }
        let n_dims = group_exprs.len();
        for (k, call) in agg_calls.iter().enumerate() {
            let idx = n_dims + k;
            subs.insert(call.canonical(), idx);
            sub_types.insert(call.canonical(), cube.schema().column_at(idx).dtype);
        }
        let cube_schema = cube.schema().clone();
        let result_ctx = EvalContext {
            schema: &cube_schema,
            scalars: &self.snap.scalars,
            substitutions: subs,
        };

        // HAVING over the cube relation.
        let cube = match having {
            Some(pred) => {
                let mut kept = Table::empty(cube.schema().clone());
                for row in cube.rows() {
                    if eval(pred, row, &result_ctx)? == Value::Bool(true) {
                        kept.push_unchecked(row.clone());
                    }
                }
                kept
            }
            None => cube,
        };

        // ---- select list over the cube relation ---------------------------
        enum ItemPlan {
            Eval(Expr, DataType),
            /// §3.5 decoration: determinant dim indices + value lookup.
            Decoration {
                dims: Vec<usize>,
                map: HashMap<Row, Value>,
                ty: DataType,
            },
            /// Red Brick ordered aggregate over the result column of `arg`
            /// (§1.2), applied in the relation's canonical order — which
            /// for ROLLUP is exactly the sequential order the paper says
            /// cumulative operators need.
            Ordered {
                arg: Expr,
                kind: OrderedKind,
            },
        }

        let mut plans: Vec<(String, ItemPlan)> = Vec::new();
        for it in items {
            if it.expr == Expr::Star {
                return Err(SqlError::Plan(
                    "SELECT * cannot be combined with GROUP BY".into(),
                ));
            }
            let name = it.output_name();
            if let Some((kind, arg)) = ordered_aggregate(&it.expr)? {
                // Validate the argument against the result context.
                infer_type(&arg, cube.schema(), &self.snap.scalars, &sub_types)?;
                plans.push((name, ItemPlan::Ordered { arg, kind }));
                continue;
            }
            // Resolvable in the result context (dimension, aggregate, or an
            // expression over them)?
            let resolvable = infer_type(&it.expr, cube.schema(), &self.snap.scalars, &sub_types);
            match resolvable {
                Ok(ty) => plans.push((name, ItemPlan::Eval(it.expr.clone(), ty))),
                Err(_) => {
                    // Decoration path: a base column functionally dependent
                    // on the grouping columns (§3.5).
                    let Expr::Column { name: col, .. } = &it.expr else {
                        return Err(SqlError::Plan(format!(
                            "select item is neither a grouping expression, an \
                             aggregate, nor a decoration: {}",
                            it.expr.canonical()
                        )));
                    };
                    let plan = self.plan_decoration(col, &group_exprs, &dim_names, &working)?;
                    let ty = working.schema().column(col)?.dtype;
                    plans.push((
                        name,
                        ItemPlan::Decoration {
                            dims: plan.0,
                            map: plan.1,
                            ty,
                        },
                    ));
                }
            }
        }

        let unique_names = uniquify(plans.iter().map(|(n, _)| n.clone()).collect());
        let schema = Schema::new(
            unique_names
                .iter()
                .zip(plans.iter())
                .map(|(n, (_, p))| {
                    let ty = match p {
                        ItemPlan::Eval(_, t) => *t,
                        ItemPlan::Decoration { ty, .. } => *ty,
                        ItemPlan::Ordered { kind, .. } => kind.output_type(),
                    };
                    // Output grouping columns keep ALL-permission.
                    ColumnDef {
                        name: n.as_str().into(),
                        dtype: ty,
                        all_allowed: true,
                    }
                })
                .collect(),
        )?;

        // Pass 1: per-row values (ordered aggregates collect their input
        // column here).
        let mut columns: Vec<Vec<Value>> = plans
            .iter()
            .map(|_| Vec::with_capacity(cube.len()))
            .collect();
        for row in cube.rows() {
            for ((_, p), col) in plans.iter().zip(columns.iter_mut()) {
                col.push(match p {
                    ItemPlan::Eval(e, _) => eval(e, row, &result_ctx)?,
                    ItemPlan::Decoration { dims, map, .. } => {
                        if dims.iter().any(|&d| row[d].is_all() || row[d].is_null()) {
                            Value::Null
                        } else {
                            let key = Row::new(dims.iter().map(|&d| row[d].clone()).collect());
                            map.get(&key).cloned().unwrap_or(Value::Null)
                        }
                    }
                    ItemPlan::Ordered { arg, .. } => eval(arg, row, &result_ctx)?,
                });
            }
        }
        // Pass 2: ordered aggregates transform their whole column.
        for ((_, p), col) in plans.iter().zip(columns.iter_mut()) {
            if let ItemPlan::Ordered { kind, .. } = p {
                *col = kind.apply(col)?;
            }
        }

        let mut out = Table::empty(schema);
        for i in 0..cube.len() {
            out.push_unchecked(Row::new(columns.iter().map(|c| c[i].clone()).collect()));
        }
        Ok(out)
    }

    /// Find a determinant set of grouping columns for a decoration and
    /// build the lookup map. Prefers a single determining dimension
    /// (Table 7: nation alone determines continent), falling back to the
    /// full dimension list.
    #[allow(clippy::type_complexity)]
    fn plan_decoration(
        &self,
        col: &str,
        group_exprs: &[&GroupExpr],
        dim_names: &[String],
        working: &Table,
    ) -> SqlResult<(Vec<usize>, HashMap<Row, Value>)> {
        let col_idx = working.schema().index_of(col).map_err(|_| {
            SqlError::Plan(format!(
                "select item '{col}' is neither a grouping column, an aggregate, \
                 nor a base column"
            ))
        })?;
        // Evaluate dimension values per base row once.
        let ctx = EvalContext::base(working.schema(), &self.snap.scalars);
        let mut dim_vals: Vec<Vec<Value>> = Vec::with_capacity(group_exprs.len());
        for g in group_exprs {
            let mut col_vals = Vec::with_capacity(working.len());
            for row in working.rows() {
                col_vals.push(eval(&g.expr, row, &ctx)?);
            }
            dim_vals.push(col_vals);
        }
        // Candidate determinant sets: each single dim, then all dims.
        let mut candidates: Vec<Vec<usize>> = (0..group_exprs.len()).map(|i| vec![i]).collect();
        candidates.push((0..group_exprs.len()).collect());
        'cand: for dims in candidates {
            if dims.is_empty() {
                continue;
            }
            let mut map: HashMap<Row, Value> = HashMap::new();
            for (r, row) in working.rows().iter().enumerate() {
                let key = Row::new(dims.iter().map(|&d| dim_vals[d][r].clone()).collect());
                let val = row[col_idx].clone();
                match map.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != val {
                            continue 'cand; // FD violated; try next candidate
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(val);
                    }
                }
            }
            return Ok((dims, map));
        }
        Err(SqlError::Plan(format!(
            "decoration column '{col}' is not functionally dependent on the \
             grouping columns (§3.5 requires the FD); add it to GROUP BY \
             ({})",
            dim_names.join(", ")
        )))
    }

    // ----------------------------------------------------------- helpers --

    fn resolve_from(&self, from: &TableRef) -> SqlResult<Arc<Table>> {
        match from {
            // A named scan shares the snapshot's table — no row copies.
            // Every consumer below holds the Arc for the statement's
            // lifetime, so a concurrent catalog update never invalidates
            // an in-flight read (it publishes a new Arc instead).
            TableRef::Named(name) => self.snap.table(name),
            TableRef::JoinUsing { left, right, using } => {
                let l = self.resolve_from(left)?;
                let r = self.resolve_from(right)?;
                Ok(Arc::new(join_using(&l, &r, using)?))
            }
        }
    }

    /// Replace uncorrelated scalar subqueries with their computed value.
    fn resolve_subqueries(&self, expr: &Expr) -> SqlResult<Expr> {
        Ok(match expr {
            Expr::ScalarSubquery(stmt) => {
                let result = self.exec_select(stmt)?;
                if result.schema().len() != 1 {
                    return Err(SqlError::Plan(
                        "scalar subquery must return exactly one column".into(),
                    ));
                }
                let v = match result.len() {
                    0 => Value::Null,
                    1 => result.rows()[0][0].clone(),
                    n => return Err(SqlError::Plan(format!("scalar subquery returned {n} rows"))),
                };
                Expr::Literal(v)
            }
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.resolve_subqueries(lhs)?),
                rhs: Box::new(self.resolve_subqueries(rhs)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(self.resolve_subqueries(e)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(self.resolve_subqueries(e)?)),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.resolve_subqueries(expr)?),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.resolve_subqueries(expr)?),
                low: Box::new(self.resolve_subqueries(low)?),
                high: Box::new(self.resolve_subqueries(high)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.resolve_subqueries(expr)?),
                list: list
                    .iter()
                    .map(|e| self.resolve_subqueries(e))
                    .collect::<SqlResult<_>>()?,
                negated: *negated,
            },
            Expr::Func {
                name,
                distinct,
                args,
            } => Expr::Func {
                name: name.clone(),
                distinct: *distinct,
                args: args
                    .iter()
                    .map(|e| self.resolve_subqueries(e))
                    .collect::<SqlResult<_>>()?,
            },
            other => other.clone(),
        })
    }

    fn apply_order_limit(&self, table: Table, stmt: &SelectStmt) -> SqlResult<Table> {
        let mut rows: Vec<Row> = table.rows().to_vec();
        if !stmt.order_by.is_empty() {
            // Resolve each key to an output column index.
            let mut keys: Vec<(usize, bool)> = Vec::new();
            for k in &stmt.order_by {
                let idx = match &k.expr {
                    Expr::Literal(Value::Int(n)) if *n >= 1 => {
                        let i = (*n - 1) as usize;
                        if i >= table.schema().len() {
                            return Err(SqlError::Plan(format!(
                                "ORDER BY ordinal {n} out of range"
                            )));
                        }
                        i
                    }
                    other => {
                        let name = other.canonical();
                        table.schema().index_of(&name).map_err(|_| {
                            SqlError::Plan(format!("ORDER BY key '{name}' is not an output column"))
                        })?
                    }
                };
                keys.push((idx, k.descending));
            }
            rows.sort_by(|a, b| {
                for &(i, desc) in &keys {
                    let ord = a[i].cmp(&b[i]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = stmt.limit {
            rows.truncate(n);
        }
        Ok(Table::from_validated_rows(table.schema().clone(), rows))
    }
}

/// Parameterized aggregates constructed per call site: `MAXN(x, n)`,
/// `MINN(x, n)` (the paper's algebraic examples), and `PERCENTILE(x, p)`
/// (holistic). The parameter must be a literal, since it configures the
/// function itself rather than feeding it data.
fn parameterized_aggregate(name: &str, args: &[Expr]) -> SqlResult<Option<AggRef>> {
    let upper = name.to_uppercase();
    let make = |f: AggRef| Ok(Some(f));
    match upper.as_str() {
        "MAXN" | "MINN" => {
            let n = match args.get(1) {
                Some(Expr::Literal(Value::Int(n))) if *n >= 1 => *n as usize,
                // cube-lint: allow(wildcard, scrutinee is Option<Expr>; this is the user-error arm)
                _ => {
                    return Err(SqlError::Plan(format!(
                        "{upper} requires a positive integer literal as its second argument"
                    )))
                }
            };
            if args.len() != 2 {
                return Err(SqlError::Plan(format!("{upper} takes 2 arguments")));
            }
            if upper == "MAXN" {
                make(std::sync::Arc::new(dc_aggregate::algebraic::MaxN(n)))
            } else {
                make(std::sync::Arc::new(dc_aggregate::algebraic::MinN(n)))
            }
        }
        "PERCENTILE" => {
            let p = match args.get(1) {
                Some(Expr::Literal(Value::Float(p))) if *p > 0.0 && *p <= 1.0 => *p,
                // cube-lint: allow(wildcard, scrutinee is Option<Expr>; this is the user-error arm)
                _ => {
                    return Err(SqlError::Plan(
                        "PERCENTILE requires a literal fraction in (0, 1] as its \
                         second argument"
                            .into(),
                    ))
                }
            };
            if args.len() != 2 {
                return Err(SqlError::Plan("PERCENTILE takes 2 arguments".into()));
            }
            make(std::sync::Arc::new(dc_aggregate::holistic::Percentile(p)))
        }
        _ => Ok(None),
    }
}

/// The Red Brick ordered aggregates (§1.2), recognized at the top level of
/// a select item: `RANK(x)`, `N_TILE(x, n)`, `RATIO_TO_TOTAL(x)`,
/// `CUMULATIVE(x)`, `RUNNING_SUM(x, n)`, `RUNNING_AVG(x, n)`. They map a
/// whole output column to a column, evaluated in the result's order — the
/// paper's "ROLLUP and CUBE must be ordered for cumulative operators to
/// apply".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OrderedKind {
    Rank,
    NTile(usize),
    RatioToTotal,
    Cumulative,
    RunningSum(usize),
    RunningAvg(usize),
}

impl OrderedKind {
    fn output_type(self) -> DataType {
        match self {
            OrderedKind::Rank | OrderedKind::NTile(_) => DataType::Int,
            _ => DataType::Float,
        }
    }

    fn apply(self, values: &[Value]) -> SqlResult<Vec<Value>> {
        use dc_aggregate::ordered;
        Ok(match self {
            OrderedKind::Rank => ordered::rank(values),
            OrderedKind::NTile(n) => ordered::n_tile(values, n)?,
            OrderedKind::RatioToTotal => ordered::ratio_to_total(values),
            OrderedKind::Cumulative => ordered::cumulative(values),
            OrderedKind::RunningSum(n) => ordered::running_sum(values, n)?,
            OrderedKind::RunningAvg(n) => ordered::running_average(values, n)?,
        })
    }
}

/// Recognize an ordered-aggregate call; returns its kind and argument
/// expression.
fn ordered_aggregate(expr: &Expr) -> SqlResult<Option<(OrderedKind, Expr)>> {
    let Expr::Func {
        name,
        distinct,
        args,
    } = expr
    else {
        return Ok(None);
    };
    let upper = name.to_uppercase();
    let needs_n = matches!(upper.as_str(), "N_TILE" | "RUNNING_SUM" | "RUNNING_AVG");
    let kind = match upper.as_str() {
        "RANK" => OrderedKind::Rank,
        "RATIO_TO_TOTAL" => OrderedKind::RatioToTotal,
        "CUMULATIVE" => OrderedKind::Cumulative,
        "N_TILE" | "RUNNING_SUM" | "RUNNING_AVG" => {
            let n = match args.get(1) {
                Some(Expr::Literal(Value::Int(n))) if *n >= 1 => *n as usize,
                // cube-lint: allow(wildcard, scrutinee is Option<Expr>; this is the user-error arm)
                _ => {
                    return Err(SqlError::Plan(format!(
                        "{upper} requires a positive integer literal as its second argument"
                    )))
                }
            };
            match upper.as_str() {
                "N_TILE" => OrderedKind::NTile(n),
                "RUNNING_SUM" => OrderedKind::RunningSum(n),
                _ => OrderedKind::RunningAvg(n),
            }
        }
        _ => return Ok(None),
    };
    if *distinct {
        return Err(SqlError::Plan(format!("DISTINCT is not valid in {upper}")));
    }
    let expected_args = if needs_n { 2 } else { 1 };
    if args.len() != expected_args {
        return Err(SqlError::Plan(format!(
            "{upper} takes {expected_args} argument(s), got {}",
            args.len()
        )));
    }
    Ok(Some((kind, args[0].clone())))
}

/// Human-readable FROM description for EXPLAIN.
fn describe_from(from: &TableRef) -> String {
    match from {
        TableRef::Named(n) => n.clone(),
        TableRef::JoinUsing { left, right, using } => format!(
            "{} JOIN {} USING ({})",
            describe_from(left),
            describe_from(right),
            using.join(", ")
        ),
    }
}

/// Inner equi-join on the USING columns; right USING columns are dropped,
/// and remaining name collisions are an error (qualify with a different
/// schema design — good enough for star queries).
fn join_using(left: &Table, right: &Table, using: &[String]) -> SqlResult<Table> {
    let using_refs: Vec<&str> = using.iter().map(String::as_str).collect();
    let l_keys = left.schema().indices_of(&using_refs)?;
    let r_keys = right.schema().indices_of(&using_refs)?;
    let r_keep: Vec<usize> = (0..right.schema().len())
        .filter(|i| !r_keys.contains(i))
        .collect();

    let mut cols = left.schema().columns().to_vec();
    for &i in &r_keep {
        cols.push(right.schema().column_at(i).clone());
    }
    let schema = Schema::new(cols).map_err(|e| {
        SqlError::Plan(format!("JOIN USING name collision outside USING list: {e}"))
    })?;

    // Hash the right side.
    let mut index: HashMap<Row, Vec<&Row>> = HashMap::new();
    for row in right.rows() {
        index.entry(row.project(&r_keys)).or_default().push(row);
    }
    let mut out = Table::empty(schema);
    for lrow in left.rows() {
        let key = lrow.project(&l_keys);
        if key.iter().any(Value::is_null) {
            continue; // NULL keys never join
        }
        if let Some(matches) = index.get(&key) {
            for rrow in matches {
                let vals: Vec<Value> = lrow
                    .values()
                    .iter()
                    .cloned()
                    .chain(r_keep.iter().map(|&i| rrow[i].clone()))
                    .collect();
                out.push_unchecked(Row::new(vals));
            }
        }
    }
    Ok(out)
}

/// Make output column names unique the way SQL result sets allow duplicate
/// labels but our schemas do not: repeated names get `_2`, `_3`, ...
fn uniquify(names: Vec<String>) -> Vec<String> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    names
        .into_iter()
        .map(|n| {
            let count = seen.entry(n.clone()).or_insert(0);
            *count += 1;
            if *count == 1 {
                n
            } else {
                format!("{n}_{count}")
            }
        })
        .collect()
}

/// Collect maximal aggregate calls, deduplicated by canonical text.
fn collect_aggregates(expr: &Expr, is_agg: &dyn Fn(&str) -> bool, out: &mut Vec<Expr>) {
    match expr {
        Expr::Func { name, distinct, .. }
            if (is_agg(name) || (*distinct && name.eq_ignore_ascii_case("count")))
                && !out.iter().any(|e| e.canonical() == expr.canonical()) =>
        {
            out.push(expr.clone());
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_aggregates(a, is_agg, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_aggregates(lhs, is_agg, out);
            collect_aggregates(rhs, is_agg, out);
        }
        Expr::Not(e) | Expr::Neg(e) => collect_aggregates(e, is_agg, out),
        Expr::IsNull { expr, .. } => collect_aggregates(expr, is_agg, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, is_agg, out);
            collect_aggregates(low, is_agg, out);
            collect_aggregates(high, is_agg, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, is_agg, out);
            for e in list {
                collect_aggregates(e, is_agg, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relation::row;

    #[test]
    fn uniquify_appends_ordinals() {
        let names = uniquify(vec!["a".into(), "a".into(), "b".into(), "a".into()]);
        assert_eq!(names, vec!["a", "a_2", "b", "a_3"]);
    }

    #[test]
    fn join_using_drops_right_keys_and_nulls() {
        let left = Table::new(
            Schema::from_pairs(&[("k", DataType::Int), ("l", DataType::Str)]),
            vec![
                row![1, "x"],
                row![2, "y"],
                Row::new(vec![Value::Null, Value::str("z")]),
            ],
        )
        .unwrap();
        let right = Table::new(
            Schema::from_pairs(&[("k", DataType::Int), ("r", DataType::Str)]),
            vec![row![1, "one"], row![1, "uno"], row![3, "three"]],
        )
        .unwrap();
        let joined = join_using(&left, &right, &["k".to_string()]).unwrap();
        assert_eq!(joined.schema().names(), vec!["k", "l", "r"]);
        // k=1 matches twice, k=2 and k=3 unmatched, NULL key never joins.
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn join_using_rejects_name_collisions() {
        let left = Table::empty(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("x", DataType::Str),
        ]));
        let right = Table::empty(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("x", DataType::Str),
        ]));
        assert!(join_using(&left, &right, &["k".to_string()]).is_err());
    }

    #[test]
    fn describe_from_renders_join_chains() {
        let from = TableRef::JoinUsing {
            left: Box::new(TableRef::Named("fact".into())),
            right: Box::new(TableRef::Named("dim".into())),
            using: vec!["id".into(), "key".into()],
        };
        assert_eq!(describe_from(&from), "fact JOIN dim USING (id, key)");
    }

    #[test]
    fn ordered_aggregate_recognition() {
        let rank = Expr::Func {
            name: "rank".into(),
            distinct: false,
            args: vec![Expr::col("x")],
        };
        let (kind, arg) = ordered_aggregate(&rank).unwrap().unwrap();
        assert_eq!(kind, OrderedKind::Rank);
        assert_eq!(arg, Expr::col("x"));

        let ntile = Expr::Func {
            name: "N_TILE".into(),
            distinct: false,
            args: vec![Expr::col("x"), Expr::Literal(Value::Int(10))],
        };
        let (kind, _) = ordered_aggregate(&ntile).unwrap().unwrap();
        assert_eq!(kind, OrderedKind::NTile(10));

        // Non-literal n is rejected, plain functions pass through.
        let bad = Expr::Func {
            name: "N_TILE".into(),
            distinct: false,
            args: vec![Expr::col("x"), Expr::col("y")],
        };
        assert!(ordered_aggregate(&bad).is_err());
        let sum = Expr::Func {
            name: "SUM".into(),
            distinct: false,
            args: vec![Expr::col("x")],
        };
        assert!(ordered_aggregate(&sum).unwrap().is_none());
    }

    #[test]
    fn collect_aggregates_dedups_and_recurses() {
        let is_agg = |n: &str| n.eq_ignore_ascii_case("sum");
        // RANK(SUM(x)) + SUM(x): SUM(x) collected once.
        let rank = Expr::Func {
            name: "RANK".into(),
            distinct: false,
            args: vec![Expr::Func {
                name: "SUM".into(),
                distinct: false,
                args: vec![Expr::col("x")],
            }],
        };
        let sum = Expr::Func {
            name: "sum".into(),
            distinct: false,
            args: vec![Expr::col("x")],
        };
        let mut out = Vec::new();
        collect_aggregates(&rank, &is_agg, &mut out);
        collect_aggregates(&sum, &is_agg, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].canonical(), "SUM(x)");
    }

    #[test]
    fn sessions_have_independent_options_and_tokens() {
        let mut engine = Engine::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let t = Table::new(schema, (0..64).map(|i| row![i % 4, 1i64]).collect()).unwrap();
        engine.register_table("t", t).unwrap();

        // Session A gets a cancelled token; session B stays clean. The
        // old engine-global token would have cancelled both.
        let a = engine.session();
        let b = engine.session();
        let token = CancelToken::new();
        token.cancel();
        a.set_cancel_token(Some(token));
        let err = a
            .execute("SELECT k, SUM(v) AS s FROM t GROUP BY CUBE k")
            .unwrap_err();
        assert!(
            matches!(err, SqlError::Cube(datacube::CubeError::Cancelled { .. })),
            "{err:?}"
        );
        assert!(b
            .execute("SELECT k, SUM(v) AS s FROM t GROUP BY CUBE k")
            .is_ok());

        // Session A's tight budget does not leak into B either.
        a.set_cancel_token(None);
        a.set_option("MAX_CELLS", 1).unwrap();
        assert!(a
            .execute("SELECT k, SUM(v) AS s FROM t GROUP BY CUBE k")
            .is_err());
        assert!(b
            .execute("SELECT k, SUM(v) AS s FROM t GROUP BY CUBE k")
            .is_ok());
    }

    fn write_engine() -> Engine {
        let mut engine = Engine::new();
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let t = Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap();
        engine.register_table("sales", t).unwrap();
        engine
    }

    fn grand_total(engine: &Engine) -> i64 {
        let t = engine.execute("SELECT SUM(units) AS s FROM sales").unwrap();
        match t.rows()[0][0] {
            Value::Int(n) => n,
            ref other => panic!("expected Int total, got {other:?}"),
        }
    }

    #[test]
    fn sql_insert_and_delete_round_trip() {
        let engine = write_engine();
        let r = engine
            .execute("INSERT INTO sales VALUES ('Ford', 1995, 10), ('Dodge', 1994, 5)")
            .unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(2));
        assert_eq!(grand_total(&engine), 210);
        assert_eq!(engine.table("sales").unwrap().len(), 5);

        let r = engine
            .execute("DELETE FROM sales WHERE model = 'Chevy'")
            .unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(2));
        assert_eq!(grand_total(&engine), 75);

        // A predicate matching nothing deletes nothing and says so.
        let r = engine
            .execute("DELETE FROM sales WHERE year = 1887")
            .unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(0));
    }

    #[test]
    fn sql_update_rewrites_matching_rows_in_place() {
        let engine = write_engine();
        let r = engine
            .execute("UPDATE sales SET units = units + 10 WHERE model = 'Chevy'")
            .unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(2));
        assert_eq!(grand_total(&engine), 215);
        // A rewrite, not a delete-then-append growth: same cardinality.
        assert_eq!(engine.table("sales").unwrap().len(), 3);

        // Right-hand sides see the *old* row, so a pairwise swap works.
        let r = engine
            .execute("UPDATE sales SET year = units, units = year WHERE model = 'Ford'")
            .unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(1));
        let t = engine.table("sales").unwrap();
        let ford = t
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("Ford"))
            .unwrap();
        assert_eq!((&ford[1], &ford[2]), (&Value::Int(60), &Value::Int(1994)));

        // A predicate matching nothing updates nothing and says so.
        let r = engine
            .execute("UPDATE sales SET units = 0 WHERE year = 1887")
            .unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(0));

        // Unknown columns and schema-violating assignments reject the
        // whole batch before publication.
        assert!(engine.execute("UPDATE sales SET nope = 1").is_err());
        assert!(engine
            .execute("UPDATE sales SET units = 'oops' WHERE model = 'Ford'")
            .is_err());
        assert_eq!(engine.table("sales").unwrap().len(), 3);
    }

    #[test]
    fn insert_validates_rows_before_publishing() {
        let engine = write_engine();
        // Wrong type: the whole batch is rejected, including its valid
        // first row.
        assert!(engine
            .execute("INSERT INTO sales VALUES ('Ford', 1995, 10), ('Ford', 'oops', 1)")
            .is_err());
        assert_eq!(engine.table("sales").unwrap().len(), 3);
        // Wrong arity and unknown table are typed errors too.
        assert!(engine
            .execute("INSERT INTO sales VALUES ('Ford', 1995)")
            .is_err());
        assert!(engine.execute("INSERT INTO nope VALUES (1)").is_err());
        // Column references make no sense in a VALUES row.
        assert!(engine
            .execute("INSERT INTO sales VALUES (model, 1995, 1)")
            .is_err());
    }

    #[test]
    fn insert_absorbs_into_cached_views_delete_invalidates() {
        let engine = Engine::with_service(crate::ServiceConfig::default());
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let t = Table::new(
            schema,
            vec![row!["Chevy", 1994, 50], row!["Ford", 1994, 60]],
        )
        .unwrap();
        engine
            .service_parts()
            .0
            .with_write(|c| c.register_table("sales", t))
            .unwrap();

        let session = engine.session();
        let q = "SELECT model, year, SUM(units) AS s FROM sales GROUP BY CUBE model, year";
        session.execute(q).unwrap(); // miss + populate
        session.execute(q).unwrap();
        assert!(session.last_admission().answered_from_cache);

        // INSERT bumps the version, but the retained view absorbs the
        // delta: the next read hits warm at the *new* version and sees
        // the new rows.
        session
            .execute("INSERT INTO sales VALUES ('Dodge', 1995, 7)")
            .unwrap();
        let after = session.execute(q).unwrap();
        assert!(
            session.last_admission().answered_from_cache,
            "cache should absorb an insert-only delta, not invalidate"
        );
        let total = after
            .rows()
            .iter()
            .find(|r| r[0].is_all() && r[1].is_all())
            .map(|r| r[2].clone());
        assert_eq!(total, Some(Value::Int(117)));

        // DELETE is the holistic direction: the view is invalidated, the
        // next read recomputes (a miss), and the one after hits again.
        session
            .execute("DELETE FROM sales WHERE model = 'Chevy'")
            .unwrap();
        let after = session.execute(q).unwrap();
        assert!(!session.last_admission().answered_from_cache);
        let total = after
            .rows()
            .iter()
            .find(|r| r[0].is_all() && r[1].is_all())
            .map(|r| r[2].clone());
        assert_eq!(total, Some(Value::Int(67)));
        session.execute(q).unwrap();
        assert!(session.last_admission().answered_from_cache);
    }

    #[test]
    fn concurrent_inserts_never_lose_a_batch() {
        use std::sync::Arc;
        let engine = Arc::new(Engine::with_service(crate::ServiceConfig::default()));
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        engine
            .service_parts()
            .0
            .with_write(|c| c.register_table("t", Table::empty(schema)))
            .unwrap();
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let session = e.session();
                    for b in 0..8 {
                        let rows: Vec<String> =
                            (0..4).map(|i| format!("({w}, {})", b * 4 + i)).collect();
                        session
                            .execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
                            .unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // Every CAS loser rebased and retried: all 4×8×4 rows landed.
        assert_eq!(engine.table("t").unwrap().len(), 4 * 8 * 4);
    }
}
