//! The lattice cache: materialized ancestor views shared by every
//! session of one engine, with greedy benefit-per-cell retention.
//!
//! Each entry is a [`CachedView`] — the core GROUP BY of some dimension
//! set over a registered table, stored as mergeable scratchpad state
//! (see `datacube::cache`). A query whose dimensions and aggregates are
//! subsets of an entry's is answered by re-aggregating the entry's
//! cells instead of scanning base rows; [`CubeCache::lookup`] picks the
//! *minimum-cardinality* such ancestor, the same smallest-parent rule
//! the in-query cascade uses.
//!
//! Retention is the Harinarayan-style greedy benefit argument applied
//! to observed traffic: an entry's benefit-per-cell is
//! `hits × (base_rows − cells) / cells` — rows it saves per query,
//! amortized over the memory it pins. When the configured cell budget
//! overflows, the lowest-benefit entries are evicted first. Entry
//! memory is *reserved through the admission controller*
//! ([`crate::AdmissionController`]), so cached cells and in-flight
//! query cells draw on the same global pool: a cache that cannot
//! reserve simply declines to materialize.
//!
//! Invalidation is by construction: entries are keyed by
//! `(table, catalog version)`, and [`crate::Catalog::update_table`]
//! bumps the version, so a republished table can never be served stale
//! cells. [`CubeCache::invalidate_table`] additionally drops the dead
//! entries eagerly to return their reservation.

use crate::admission::{failpoint, AdmissionController};
use datacube::{CachedView, CubeResult};
use dc_relation::Table;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default retention budget: generous for a library engine (the real
/// constraint is the admission controller's global pool, when one is
/// configured).
const DEFAULT_BUDGET_CELLS: u64 = 1 << 22;

struct CacheEntry {
    /// Upper-cased table name.
    table: String,
    /// Catalog version of the table the view was built against.
    version: u64,
    /// Dimension keys (output column names), view order.
    dims: Vec<String>,
    /// Aggregate keys (`"SUM(units)"`, `"COUNT(*)"`, ...), view order.
    aggs: Vec<String>,
    view: Arc<CachedView>,
    /// Core cells the entry pins (≥ 1 so benefit division is safe).
    cells: u64,
    /// Queries this entry has answered (plus one for the query that
    /// populated it) — the traffic term of the benefit formula.
    traffic: u64,
}

impl CacheEntry {
    /// Greedy benefit-per-cell: base rows saved per hit, amortized over
    /// the cells pinned, scaled by observed traffic.
    fn benefit(&self) -> u64 {
        self.traffic
            .saturating_mul(self.view.base_rows().saturating_sub(self.cells))
            / self.cells
    }
}

/// A successful ancestor lookup: the view plus the index maps the
/// rewrite needs (query position → view position).
pub struct CacheHit {
    pub view: Arc<CachedView>,
    pub dim_map: Vec<usize>,
    pub agg_map: Vec<usize>,
    /// The ancestor's grouping-set bitmask, for `ExecStats`.
    pub ancestor_bits: u32,
}

/// Counters for tests, benchmarks, and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub entries: u64,
    pub cells: u64,
    pub evictions: u64,
}

/// The engine-wide lattice cache. Cheap to share (`Arc`), safe to hit
/// concurrently: lookups clone an `Arc<CachedView>` under a short lock
/// and re-aggregate outside it.
pub struct CubeCache {
    enabled: AtomicBool,
    budget_cells: AtomicU64,
    admission: Arc<AdmissionController>,
    entries: Mutex<Vec<CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CubeCache {
    pub(crate) fn new(admission: Arc<AdmissionController>) -> Arc<Self> {
        Arc::new(CubeCache {
            enabled: AtomicBool::new(true),
            budget_cells: AtomicU64::new(DEFAULT_BUDGET_CELLS),
            admission,
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Vec<CacheEntry>> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Engine-wide switch (sessions additionally opt out per-session via
    /// `SET CUBE_CACHE OFF`).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
        if !on {
            self.clear();
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Retention budget in cells. Shrinking it evicts immediately.
    pub fn set_budget_cells(&self, cells: u64) {
        self.budget_cells.store(cells.max(1), Ordering::SeqCst);
        let mut entries = self.lock();
        let _ = self.evict_to_budget(&mut entries, 0);
    }

    pub fn counters(&self) -> CacheCounters {
        let entries = self.lock();
        CacheCounters {
            // cube-lint: allow(atomic, telemetry read of a monotone counter; entry state is read under the entries mutex)
            hits: self.hits.load(Ordering::Relaxed),
            // cube-lint: allow(atomic, telemetry read of a monotone counter; entry state is read under the entries mutex)
            misses: self.misses.load(Ordering::Relaxed),
            entries: entries.len() as u64,
            cells: entries.iter().map(|e| e.cells).sum(),
            // cube-lint: allow(atomic, telemetry read of a monotone counter; entry state is read under the entries mutex)
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drop every entry (engine shutdown / cache disable), returning all
    /// reservations to the admission pool.
    pub fn clear(&self) {
        let mut entries = self.lock();
        for e in entries.drain(..) {
            self.admission.release_cache_cells(e.cells);
        }
    }

    /// Drop every entry for `table` (any version) — the eager half of
    /// invalidation; the version key already makes stale entries
    /// unreachable.
    pub fn invalidate_table(&self, table: &str) {
        let key = table.to_uppercase();
        let mut entries = self.lock();
        entries.retain(|e| {
            if e.table == key {
                self.admission.release_cache_cells(e.cells);
                false
            } else {
                true
            }
        });
    }

    /// Fold a batch of freshly inserted rows into every retained view of
    /// `table` instead of invalidating them — §6's insert path applied to
    /// the cache. `new_version` is the catalog version the insert
    /// republished; entries at `new_version - 1` absorb the delta by
    /// Iter_super merge and are re-keyed to `new_version`, so the very
    /// next read hits warm. Anything that cannot absorb — an older
    /// version, an absorb error (injected fault, panicking UDA), or a
    /// grown view the admission pool cannot cover — falls back to
    /// version-bump invalidation: the entry is dropped and its
    /// reservation returned.
    pub fn apply_delta(&self, table: &str, new_version: u64, delta: &Table) {
        if !self.is_enabled() {
            return;
        }
        let key = table.to_uppercase();
        let prior = new_version.saturating_sub(1);
        let mut entries = self.lock();
        let mut i = 0;
        while i < entries.len() {
            if entries[i].table != key {
                i += 1;
                continue;
            }
            if entries[i].version != prior {
                let dead = entries.swap_remove(i);
                self.admission.release_cache_cells(dead.cells);
                continue;
            }
            // Absorb under the panic guard: a UDA bomb (or injected
            // fault) in the merge degrades to invalidation of this entry,
            // never to failing the already-committed write.
            let absorbed = datacube::exec::guard("cache::absorb", || entries[i].view.absorb(delta))
                .and_then(|r| r);
            match absorbed {
                Ok(absorbed) => {
                    let new_cells = absorbed.cell_count().max(1);
                    let old_cells = entries[i].cells;
                    let grown = new_cells.saturating_sub(old_cells);
                    if grown > 0 && !self.admission.try_reserve_cache_cells(grown) {
                        let dead = entries.swap_remove(i);
                        self.admission.release_cache_cells(dead.cells);
                        continue;
                    }
                    if new_cells < old_cells {
                        self.admission.release_cache_cells(old_cells - new_cells);
                    }
                    let entry = &mut entries[i];
                    entry.view = Arc::new(absorbed);
                    entry.version = new_version;
                    entry.cells = new_cells;
                    i += 1;
                }
                Err(_) => {
                    let dead = entries.swap_remove(i);
                    self.admission.release_cache_cells(dead.cells);
                }
            }
        }
        let _ = self.evict_to_budget(&mut entries, 0);
    }

    /// Find the minimum-cardinality materialized ancestor able to answer
    /// a query over `dims`/`aggs` against `(table, version)`. Records the
    /// hit in the entry's traffic (feeding later eviction decisions) and
    /// garbage-collects entries for older versions of the same table.
    pub fn lookup(
        &self,
        table: &str,
        version: u64,
        dims: &[String],
        aggs: &[String],
    ) -> CubeResult<Option<CacheHit>> {
        failpoint("cache::lookup")?;
        if !self.is_enabled() {
            return Ok(None);
        }
        let key = table.to_uppercase();
        let mut entries = self.lock();
        // Versions are monotone: anything older than the snapshot we are
        // serving is dead weight holding budget.
        entries.retain(|e| {
            if e.table == key && e.version < version {
                self.admission.release_cache_cells(e.cells);
                false
            } else {
                true
            }
        });
        let best = entries
            .iter_mut()
            .filter(|e| {
                e.table == key
                    && e.version == version
                    && dims.iter().all(|d| e.dims.contains(d))
                    && aggs.iter().all(|a| e.aggs.contains(a))
            })
            .min_by_key(|e| e.cells);
        match best {
            Some(entry) => {
                entry.traffic = entry.traffic.saturating_add(1);
                // cube-lint: allow(atomic, monotone hit counter; the entry mutation happens under the entries mutex)
                self.hits.fetch_add(1, Ordering::Relaxed);
                let dim_map = dims
                    .iter()
                    // cube-lint: allow(panic, the candidate filter above requires every queried dim)
                    .map(|d| entry.dims.iter().position(|x| x == d).expect("filtered"))
                    .collect();
                let agg_map = aggs
                    .iter()
                    // cube-lint: allow(panic, the candidate filter above requires every queried agg)
                    .map(|a| entry.aggs.iter().position(|x| x == a).expect("filtered"))
                    .collect();
                Ok(Some(CacheHit {
                    view: Arc::clone(&entry.view),
                    dim_map,
                    agg_map,
                    ancestor_bits: entry.view.ancestor_bits(),
                }))
            }
            None => {
                // cube-lint: allow(atomic, monotone miss counter; lookup state is read under the entries mutex)
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
        }
    }

    /// Offer a freshly built view for retention. Declines silently when
    /// the cache is off, the view alone exceeds the budget, an identical
    /// entry already exists, or the admission pool cannot cover the
    /// reservation. May evict lower-benefit entries to make room.
    pub fn populate(
        &self,
        table: &str,
        version: u64,
        dims: Vec<String>,
        aggs: Vec<String>,
        view: CachedView,
    ) -> CubeResult<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        let key = table.to_uppercase();
        let cells = view.cell_count().max(1);
        if cells > self.budget_cells.load(Ordering::SeqCst) {
            return Ok(());
        }
        if !self.admission.try_reserve_cache_cells(cells) {
            return Ok(());
        }
        let mut entries = self.lock();
        if entries
            .iter()
            .any(|e| e.table == key && e.version == version && e.dims == dims && e.aggs == aggs)
        {
            self.admission.release_cache_cells(cells);
            return Ok(());
        }
        entries.push(CacheEntry {
            table: key,
            version,
            dims,
            aggs,
            view: Arc::new(view),
            cells,
            traffic: 1,
        });
        self.evict_to_budget(&mut entries, 0)
    }

    /// Evict lowest-benefit entries until total pinned cells fit the
    /// budget less `headroom`. Greedy in reverse: the marginal benefit
    /// argument says the views least worth their cells go first.
    fn evict_to_budget(&self, entries: &mut Vec<CacheEntry>, headroom: u64) -> CubeResult<()> {
        let budget = self
            .budget_cells
            .load(Ordering::SeqCst)
            .saturating_sub(headroom);
        let mut total: u64 = entries.iter().map(|e| e.cells).sum();
        if total <= budget {
            return Ok(());
        }
        failpoint("cache::evict")?;
        while total > budget && !entries.is_empty() {
            let victim = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.benefit())
                .map(|(i, _)| i)
                // cube-lint: allow(panic, the loop condition guarantees entries is non-empty)
                .expect("non-empty");
            let evicted = entries.swap_remove(victim);
            self.admission.release_cache_cells(evicted.cells);
            // cube-lint: allow(atomic, monotone eviction counter; the eviction itself happens under the entries mutex)
            self.evictions.fetch_add(1, Ordering::Relaxed);
            total -= evicted.cells;
        }
        Ok(())
    }
}

impl std::fmt::Debug for CubeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("CubeCache")
            .field("enabled", &self.is_enabled())
            .field("entries", &c.entries)
            .field("cells", &c.cells)
            .field("hits", &c.hits)
            .field("misses", &c.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::ServiceConfig;
    use datacube::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table};

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap()
    }

    fn view_over(dims: &[&str]) -> CachedView {
        let t = sales();
        let d: Vec<Dimension> = dims.iter().map(Dimension::column).collect();
        let a = vec![AggSpec::new(builtin("SUM").unwrap(), "units")];
        CachedView::build(&t, &d, &a).unwrap()
    }

    fn unlimited_cache() -> Arc<CubeCache> {
        CubeCache::new(AdmissionController::new(ServiceConfig::default()))
    }

    fn keys(dims: &[&str]) -> (Vec<String>, Vec<String>) {
        (
            dims.iter().map(|s| s.to_string()).collect(),
            vec!["SUM(units)".to_string()],
        )
    }

    #[test]
    fn lookup_prefers_smallest_ancestor() {
        let cache = unlimited_cache();
        let (d2, a) = keys(&["model", "year"]);
        cache
            .populate("t", 1, d2, a.clone(), view_over(&["model", "year"]))
            .unwrap();
        let (d1, _) = keys(&["model"]);
        cache
            .populate("t", 1, d1.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        // A model-only query matches both entries; the 2-cell model view
        // wins over the 3-cell (model, year) core.
        let hit = cache.lookup("t", 1, &d1, &a).unwrap().unwrap();
        assert_eq!(hit.view.cell_count(), 2);
        assert_eq!(hit.dim_map, vec![0]);
        // A (model, year) query can only use the 2-D view.
        let (dq, _) = keys(&["year", "model"]);
        let hit = cache.lookup("t", 1, &dq, &a).unwrap().unwrap();
        assert_eq!(hit.view.cell_count(), 3);
        assert_eq!(hit.dim_map, vec![1, 0]); // query order → view order
    }

    #[test]
    fn version_mismatch_misses_and_collects() {
        let cache = unlimited_cache();
        let (d, a) = keys(&["model"]);
        cache
            .populate("t", 1, d.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        assert!(cache.lookup("t", 2, &d, &a).unwrap().is_none());
        // The stale v1 entry was garbage-collected by the v2 lookup.
        assert_eq!(cache.counters().entries, 0);
    }

    #[test]
    fn invalidate_drops_table_entries() {
        let cache = unlimited_cache();
        let (d, a) = keys(&["model"]);
        cache
            .populate("t", 1, d.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        cache
            .populate("u", 1, d.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        cache.invalidate_table("T");
        assert!(cache.lookup("t", 1, &d, &a).unwrap().is_none());
        assert!(cache.lookup("u", 1, &d, &a).unwrap().is_some());
    }

    #[test]
    fn budget_eviction_keeps_high_traffic_views() {
        let cache = unlimited_cache();
        let (d2, a) = keys(&["model", "year"]);
        let (d1, _) = keys(&["model"]);
        cache
            .populate("t", 1, d1.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        // Drive traffic to the small view.
        for _ in 0..10 {
            cache.lookup("t", 1, &d1, &a).unwrap().unwrap();
        }
        cache
            .populate("t", 1, d2.clone(), a.clone(), view_over(&["model", "year"]))
            .unwrap();
        // Budget of 2 cells: only the hot 2-cell model view survives.
        cache.set_budget_cells(2);
        assert!(cache.lookup("t", 1, &d1, &a).unwrap().is_some());
        assert!(cache.lookup("t", 1, &d2, &a).unwrap().is_none());
        assert!(cache.counters().evictions >= 1);
    }

    #[test]
    fn admission_budget_gates_population() {
        // Global pool of 2 cells; the 3-cell (model, year) view cannot
        // reserve and is silently declined.
        let ctrl = AdmissionController::new(ServiceConfig {
            global_cells: 2,
            ..ServiceConfig::default()
        });
        let cache = CubeCache::new(ctrl);
        let (d2, a) = keys(&["model", "year"]);
        cache
            .populate("t", 1, d2.clone(), a.clone(), view_over(&["model", "year"]))
            .unwrap();
        assert!(cache.lookup("t", 1, &d2, &a).unwrap().is_none());
        // A 2-cell view fits the pool exactly.
        let (d1, _) = keys(&["model"]);
        cache
            .populate("t", 1, d1.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        assert!(cache.lookup("t", 1, &d1, &a).unwrap().is_some());
    }

    #[test]
    fn apply_delta_absorbs_instead_of_invalidating() {
        let cache = unlimited_cache();
        let (d, a) = keys(&["model"]);
        cache
            .populate("t", 1, d.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        let delta = Table::new(
            sales().schema().clone(),
            vec![row!["Dodge", 2000, 7], row!["Chevy", 1994, 15]],
        )
        .unwrap();
        cache.apply_delta("t", 2, &delta);
        // The entry followed the version bump by absorbing the batch: a
        // new cell for Dodge, a merged cell for Chevy, no invalidation.
        let hit = cache.lookup("t", 2, &d, &a).unwrap().unwrap();
        assert_eq!(hit.view.cell_count(), 3);
        assert_eq!(hit.view.base_rows(), 5);
        assert_eq!(cache.counters().entries, 1);
    }

    #[test]
    fn apply_delta_drops_views_it_cannot_grow() {
        // Global pool of exactly 2 cells: the 2-cell model view fits, but
        // growing it to 3 cells cannot reserve — fall back to dropping.
        let ctrl = AdmissionController::new(ServiceConfig {
            global_cells: 2,
            ..ServiceConfig::default()
        });
        let cache = CubeCache::new(ctrl);
        let (d, a) = keys(&["model"]);
        cache
            .populate("t", 1, d.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        let delta = Table::new(sales().schema().clone(), vec![row!["Dodge", 2000, 7]]).unwrap();
        cache.apply_delta("t", 2, &delta);
        assert!(cache.lookup("t", 2, &d, &a).unwrap().is_none());
        // The reservation was returned with the entry.
        assert_eq!(cache.counters().cells, 0);
    }

    #[test]
    fn disabled_cache_answers_nothing() {
        let cache = unlimited_cache();
        let (d, a) = keys(&["model"]);
        cache
            .populate("t", 1, d.clone(), a.clone(), view_over(&["model"]))
            .unwrap();
        cache.set_enabled(false);
        assert!(cache.lookup("t", 1, &d, &a).unwrap().is_none());
        cache.set_enabled(true);
        // Disabling cleared retained entries (and their reservations).
        assert!(cache.lookup("t", 1, &d, &a).unwrap().is_none());
    }
}
