//! Errors for the SQL layer.

use datacube::CubeError;
use dc_aggregate::AggError;
use dc_relation::RelError;
use std::fmt;

/// Errors raised while lexing, parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error with byte offset.
    Lex { pos: usize, message: String },
    /// Parse error with the offending token text.
    Parse { near: String, message: String },
    /// Semantic error caught at plan time (unknown table/column/function,
    /// type mismatch, illegal select-list item, ...).
    Plan(String),
    /// Underlying cube-operator error.
    Cube(CubeError),
    /// Underlying relational error.
    Rel(RelError),
    /// Underlying aggregate-framework error.
    Agg(AggError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            SqlError::Parse { near, message } => {
                write!(f, "parse error near '{near}': {message}")
            }
            SqlError::Plan(msg) => write!(f, "plan error: {msg}"),
            SqlError::Cube(e) => write!(f, "{e}"),
            SqlError::Rel(e) => write!(f, "{e}"),
            SqlError::Agg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<CubeError> for SqlError {
    fn from(e: CubeError) -> Self {
        SqlError::Cube(e)
    }
}

impl From<RelError> for SqlError {
    fn from(e: RelError) -> Self {
        SqlError::Rel(e)
    }
}

impl From<AggError> for SqlError {
    fn from(e: AggError) -> Self {
        SqlError::Agg(e)
    }
}

/// Convenience alias.
pub type SqlResult<T> = Result<T, SqlError>;
