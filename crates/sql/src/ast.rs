//! The abstract syntax tree.

use dc_relation::Value;
use std::fmt;

/// A parsed statement: queries, session options, and the DML write path
/// (`INSERT INTO` / `DELETE FROM`) that feeds batched cube maintenance.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `EXPLAIN SELECT ...`: describe the plan instead of executing it.
    Explain(SelectStmt),
    /// `SET <option> = <integer>`: session execution options (resource
    /// budgets, thread count). `0` resets an option to its default.
    Set {
        name: String,
        value: i64,
    },
    /// `INSERT INTO <table> VALUES (...), (...)` — one statement is one
    /// delta batch against the named table.
    Insert {
        table: String,
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM <table> [WHERE <predicate>]` — the matching rows form
    /// one delete batch.
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    /// `UPDATE <table> SET c1 = e1, ... [WHERE <predicate>]` — sugar for a
    /// delete of the matching rows plus an insert of their rewritten
    /// images, executed as one batch under a single admission permit.
    Update {
        table: String,
        /// `(column, value-expression)` pairs, applied left to right; the
        /// expressions see the *old* row, per SQL semantics.
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
}

/// One `SELECT` block, possibly chained with `UNION [ALL]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub where_clause: Option<Expr>,
    pub group_by: Option<GroupByClause>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    /// `UNION [ALL] <next select>`.
    pub union: Option<(bool, Box<SelectStmt>)>,
}

/// A FROM item: a named table, optionally joined.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Named(String),
    /// `a JOIN b USING (c1, c2, ...)` — inner equi-join, the form §3.5's
    /// decoration example uses.
    JoinUsing {
        left: Box<TableRef>,
        right: Box<TableRef>,
        using: Vec<String>,
    },
}

/// One select-list item: an expression with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl SelectItem {
    /// The output column name: the alias, or the expression's canonical
    /// text.
    pub fn output_name(&self) -> String {
        self.alias.clone().unwrap_or_else(|| self.expr.canonical())
    }
}

/// The §3.2 grammar: `GROUP BY [list] [ROLLUP list] [CUBE list]`, or
/// `GROUP BY GROUPING SETS ((...), ...)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupByClause {
    pub plain: Vec<GroupExpr>,
    pub rollup: Vec<GroupExpr>,
    pub cube: Vec<GroupExpr>,
    /// Mutually exclusive with the three blocks above.
    pub grouping_sets: Option<Vec<Vec<GroupExpr>>>,
}

impl GroupByClause {
    /// All grouping expressions in answer-column order.
    pub fn all_exprs(&self) -> Vec<&GroupExpr> {
        if let Some(sets) = &self.grouping_sets {
            // Deduplicate by canonical text, preserving first appearance.
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for set in sets {
                for g in set {
                    if seen.insert(g.expr.canonical()) {
                        out.push(g);
                    }
                }
            }
            out
        } else {
            self.plain
                .iter()
                .chain(self.rollup.iter())
                .chain(self.cube.iter())
                .collect()
        }
    }
}

/// A grouping expression with an optional alias: `Day(Time) AS day`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupExpr {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl GroupExpr {
    /// The dimension's output name.
    pub fn output_name(&self) -> String {
        self.alias.clone().unwrap_or_else(|| self.expr.canonical())
    }
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub descending: bool,
}

/// Binary operators by precedence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Lte => "<=",
            BinOp::Gt => ">",
            BinOp::Gte => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference; the optional qualifier (`sales.model`) is kept
    /// for display but resolution is by bare name after joins.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    /// `*` — only legal as the argument of COUNT.
    Star,
    /// Function call: aggregate or scalar, resolved at plan time.
    /// `distinct` is only legal on aggregates (`COUNT(DISTINCT x)`).
    Func {
        name: String,
        distinct: bool,
        args: Vec<Expr>,
    },
    /// The §3.4 `GROUPING(column)` discriminator.
    Grouping(Box<Expr>),
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Not(Box<Expr>),
    Neg(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// Uncorrelated scalar subquery, e.g. §4's
    /// `SUM(Sales) / (SELECT SUM(Sales) FROM Sales WHERE ...)`.
    ScalarSubquery(Box<SelectStmt>),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Canonical text used for output naming and matching select items to
    /// grouping expressions.
    pub fn canonical(&self) -> String {
        match self {
            Expr::Column {
                qualifier: Some(q),
                name,
            } => format!("{q}.{name}"),
            Expr::Column {
                qualifier: None,
                name,
            } => name.clone(),
            Expr::Literal(v) => match v {
                Value::Str(s) => format!("'{s}'"),
                other => other.to_string(),
            },
            Expr::Star => "*".into(),
            Expr::Func {
                name,
                distinct,
                args,
            } => {
                let args: Vec<String> = args.iter().map(Expr::canonical).collect();
                if *distinct {
                    format!("{}(DISTINCT {})", name.to_uppercase(), args.join(", "))
                } else {
                    format!("{}({})", name.to_uppercase(), args.join(", "))
                }
            }
            Expr::Grouping(e) => format!("GROUPING({})", e.canonical()),
            Expr::Binary { op, lhs, rhs } => {
                format!("({} {} {})", lhs.canonical(), op.symbol(), rhs.canonical())
            }
            Expr::Not(e) => format!("(NOT {})", e.canonical()),
            Expr::Neg(e) => format!("(-{})", e.canonical()),
            Expr::IsNull { expr, negated } => {
                format!(
                    "({} IS {}NULL)",
                    expr.canonical(),
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => format!(
                "({} {}BETWEEN {} AND {})",
                expr.canonical(),
                if *negated { "NOT " } else { "" },
                low.canonical(),
                high.canonical()
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(Expr::canonical).collect();
                format!(
                    "({} {}IN ({}))",
                    expr.canonical(),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::ScalarSubquery(_) => "(SELECT ...)".into(),
        }
    }

    /// Does this expression (transitively) contain an aggregate call or
    /// `GROUPING()`? Used to classify select items.
    pub fn contains_aggregate(&self, is_aggregate: &dyn Fn(&str) -> bool) -> bool {
        match self {
            Expr::Func { name, args, .. } => {
                is_aggregate(name) || args.iter().any(|a| a.contains_aggregate(is_aggregate))
            }
            Expr::Grouping(_) => true,
            Expr::Binary { lhs, rhs, .. } => {
                lhs.contains_aggregate(is_aggregate) || rhs.contains_aggregate(is_aggregate)
            }
            Expr::Not(e) | Expr::Neg(e) => e.contains_aggregate(is_aggregate),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(is_aggregate),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.contains_aggregate(is_aggregate)
                    || low.contains_aggregate(is_aggregate)
                    || high.contains_aggregate(is_aggregate)
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate(is_aggregate)
                    || list.iter().any(|e| e.contains_aggregate(is_aggregate))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_text() {
        let e = Expr::Func {
            name: "sum".into(),
            distinct: false,
            args: vec![Expr::col("units")],
        };
        assert_eq!(e.canonical(), "SUM(units)");
        let g = Expr::Grouping(Box::new(Expr::col("model")));
        assert_eq!(g.canonical(), "GROUPING(model)");
        let b = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(e),
            rhs: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert_eq!(b.canonical(), "(SUM(units) / 2)");
    }

    #[test]
    fn aggregate_detection_recurses() {
        let is_agg = |n: &str| n.eq_ignore_ascii_case("sum");
        let plain = Expr::col("x");
        assert!(!plain.contains_aggregate(&is_agg));
        let nested = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::col("x")),
            rhs: Box::new(Expr::Func {
                name: "SUM".into(),
                distinct: false,
                args: vec![Expr::col("y")],
            }),
        };
        assert!(nested.contains_aggregate(&is_agg));
        let grouping = Expr::Grouping(Box::new(Expr::col("x")));
        assert!(grouping.contains_aggregate(&is_agg));
    }

    #[test]
    fn grouping_sets_dedup_in_order() {
        let g = |n: &str| GroupExpr {
            expr: Expr::col(n),
            alias: None,
        };
        let clause = GroupByClause {
            grouping_sets: Some(vec![vec![g("a"), g("b")], vec![g("b"), g("c")], vec![]]),
            ..Default::default()
        };
        let names: Vec<String> = clause.all_exprs().iter().map(|e| e.output_name()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
