//! # dc-sql — a SQL front end for the data cube
//!
//! The paper's operators were designed as SQL syntax: "Since the CUBE is
//! an aggregation operation, it makes sense to externalize it by
//! overloading the SQL GROUP BY operator" (§3), with the final grammar
//!
//! ```sql
//! GROUP BY [<aggregation list>]
//!     [ROLLUP <aggregation list>]
//!     [CUBE <aggregation list>]
//! ```
//!
//! This crate is the substrate that makes the embedding real: a lexer,
//! recursive-descent parser, and executor for the SQL subset the paper's
//! examples use —
//!
//! * `SELECT` lists mixing grouping expressions, aggregate calls,
//!   arbitrary arithmetic over them, string literals, and the `GROUPING()`
//!   discriminator of §3.4;
//! * aggregation over *computed categories* (§2's histogram problem):
//!   `GROUP BY Day(Time) AS day, Nation(Latitude, Longitude) AS nation`;
//! * `GROUP BY` / `ROLLUP` / `CUBE` in the §3.1 compound form, plus
//!   `GROUPING SETS (...)`;
//! * `WHERE` (three-valued), `HAVING`, `ORDER BY`, `UNION [ALL]` — enough
//!   to run the paper's §2 hand-written 4-way-union roll-up verbatim and
//!   compare it against the CUBE operator;
//! * uncorrelated scalar subqueries, for §4's percent-of-total example;
//! * `JOIN ... USING` for §3.5 decorations and star queries.
//!
//! The executor plans aggregation through [`datacube::CubeQuery`], so
//! every query benefits from the §5 algorithms.
//!
//! Beyond the single-caller API, the crate is a *cube service*: one
//! [`Engine`] shares its catalog across any number of [`Session`]s, an
//! [`AdmissionController`] apportions a global memory/cell budget across
//! in-flight queries (queueing, shedding, and a reserved cheap lane), and
//! [`server::serve`] exposes it all over a length-prefixed TCP protocol
//! (see the `dc_serve` binary and DESIGN.md "Concurrent serving").

pub mod admission;
pub mod ast;
pub mod cache;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod eval;
pub mod parser;
pub mod scalar;
pub mod server;
pub mod session;
pub mod token;
pub mod wire;

pub use admission::{AdmissionController, AdmissionCounters, QueryCost, ServiceConfig};
pub use cache::{CacheCounters, CubeCache};
pub use catalog::{Catalog, CatalogSnapshot, SharedCatalog};
pub use engine::Engine;
pub use error::{SqlError, SqlResult};
pub use scalar::ScalarRegistry;
pub use server::{serve, ServerConfig, ServerHandle};
pub use session::Session;
pub use wire::{read_frame, write_frame, Response};
