//! Expression evaluation.
//!
//! Expressions are evaluated in two contexts:
//!
//! * the **base context** — a row of the FROM table (WHERE clauses,
//!   grouping expressions, aggregate arguments), and
//! * the **result context** — a row of the cube relation (select items,
//!   HAVING, ORDER BY), where aggregate calls have been *substituted* by
//!   the cube's output columns.
//!
//! The substitution map keyed by canonical expression text is what lets
//! one `Expr` type serve both: by the time a result-context expression is
//! evaluated, every aggregate inside it resolves through the map.
//!
//! Comparison and boolean logic are three-valued (SQL semantics):
//! anything involving NULL — or the `ALL` token, whose set semantics §3.3
//! deliberately leaves out of scalar comparison — evaluates to NULL, and
//! `WHERE` keeps only rows that evaluate to `TRUE`.

use crate::ast::{BinOp, Expr};
use crate::error::{SqlError, SqlResult};
use crate::scalar::ScalarRegistry;
use dc_relation::{DataType, Row, Schema, Value};
use std::collections::HashMap;

/// Everything needed to evaluate expressions against rows of one schema.
pub struct EvalContext<'a> {
    pub schema: &'a Schema,
    pub scalars: &'a ScalarRegistry,
    /// Canonical expression text → column index in this context's rows.
    /// Populated in the result context with grouping aliases and
    /// aggregate-call columns; empty in the base context.
    pub substitutions: HashMap<String, usize>,
}

impl<'a> EvalContext<'a> {
    pub fn base(schema: &'a Schema, scalars: &'a ScalarRegistry) -> Self {
        EvalContext {
            schema,
            scalars,
            substitutions: HashMap::new(),
        }
    }

    fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        if let Some(q) = qualifier {
            if let Some(&i) = self.substitutions.get(&format!("{q}.{name}")) {
                return Some(i);
            }
        }
        if let Some(&i) = self.substitutions.get(name) {
            return Some(i);
        }
        self.schema.index_of(name).ok()
    }
}

/// Evaluate `expr` against one row.
pub fn eval(expr: &Expr, row: &Row, ctx: &EvalContext) -> SqlResult<Value> {
    // Substitution by canonical text first: in the result context this is
    // how `SUM(units)` becomes a column read.
    if !ctx.substitutions.is_empty() {
        if let Some(&i) = ctx.substitutions.get(&expr.canonical()) {
            return Ok(row[i].clone());
        }
    }
    match expr {
        Expr::Column { qualifier, name } => ctx
            .resolve_column(qualifier.as_deref(), name)
            .map(|i| row[i].clone())
            .ok_or_else(|| SqlError::Plan(format!("unknown column: {}", expr.canonical()))),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Star => Err(SqlError::Plan("'*' is only valid in COUNT(*)".into())),
        Expr::Func { name, args, .. } => {
            let f = ctx.scalars.get(name).ok_or_else(|| {
                SqlError::Plan(format!("unknown function in this context: {name}"))
            })?;
            if args.len() != f.arity {
                return Err(SqlError::Plan(format!(
                    "{} takes {} argument(s), got {}",
                    f.name,
                    f.arity,
                    args.len()
                )));
            }
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, row, ctx))
                .collect::<SqlResult<_>>()?;
            Ok(f.call(&vals))
        }
        Expr::Grouping(inner) => {
            // §3.4: TRUE iff the element is an ALL value. Base rows are
            // never ALL, so GROUPING() is FALSE there — consistent.
            let v = eval(inner, row, ctx)?;
            Ok(Value::Bool(v.is_all()))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, row, ctx)?;
            let r = eval(rhs, row, ctx)?;
            eval_binary(*op, &l, &r)
        }
        Expr::Not(e) => Ok(match eval(e, row, ctx)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null
            | Value::All
            | Value::Int(_)
            | Value::Float(_)
            | Value::Str(_)
            | Value::Date(_) => Value::Null,
        }),
        Expr::Neg(e) => Ok(match eval(e, row, ctx)? {
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            Value::Null | Value::All | Value::Bool(_) | Value::Str(_) | Value::Date(_) => {
                Value::Null
            }
        }),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row, ctx)?;
            let is_null = v.is_null();
            Ok(Value::Bool(is_null != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            let lo = eval(low, row, ctx)?;
            let hi = eval(high, row, ctx)?;
            let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
            let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
            Ok(match (ge, le) {
                (Some(a), Some(b)) => Value::Bool((a && b) != *negated),
                _ => Value::Null,
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            let mut saw_unknown = false;
            for item in list {
                let w = eval(item, row, ctx)?;
                match v.sql_eq(&w) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_unknown = true,
                }
            }
            Ok(if saw_unknown {
                Value::Null
            } else {
                Value::Bool(*negated)
            })
        }
        Expr::ScalarSubquery(_) => Err(SqlError::Plan(
            "internal: scalar subquery not resolved before evaluation".into(),
        )),
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    use BinOp::*;
    match op {
        And => Ok(kleene_and(l, r)),
        Or => Ok(kleene_or(l, r)),
        Eq | Neq | Lt | Lte | Gt | Gte => {
            let cmp = l.sql_cmp(r);
            Ok(match cmp {
                None => Value::Null,
                Some(o) => Value::Bool(match op {
                    Eq => o == std::cmp::Ordering::Equal,
                    Neq => o != std::cmp::Ordering::Equal,
                    Lt => o == std::cmp::Ordering::Less,
                    Lte => o != std::cmp::Ordering::Greater,
                    Gt => o == std::cmp::Ordering::Greater,
                    Gte => o != std::cmp::Ordering::Less,
                    // cube-lint: allow(panic, the outer arm admits only the six comparison ops)
                    _ => unreachable!(),
                }),
            })
        }
        Add | Sub | Mul | Mod => Ok(match (l, r) {
            (Value::Int(a), Value::Int(b)) => match op {
                Add => Value::Int(a + b),
                Sub => Value::Int(a - b),
                Mul => Value::Int(a * b),
                Mod if *b != 0 => Value::Int(a % b),
                _ => Value::Null,
            },
            // cube-lint: allow(wildcard, numeric coercion defers to as_f64, which is exhaustive)
            _ => match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => match op {
                    Add => Value::Float(a + b),
                    Sub => Value::Float(a - b),
                    Mul => Value::Float(a * b),
                    Mod if b != 0.0 => Value::Float(a % b),
                    _ => Value::Null,
                },
                _ => Value::Null,
            },
        }),
        // SQL engines disagree on integer division; we follow the paper's
        // §4 usage (percent-of-total) and always divide as floats.
        Div => Ok(match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) if b != 0.0 => Value::Float(a / b),
            _ => Value::Null,
        }),
    }
}

fn kleene_and(l: &Value, r: &Value) -> Value {
    match (l.as_bool(), r.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn kleene_or(l: &Value, r: &Value) -> Value {
    match (l.as_bool(), r.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// Infer an expression's output type against a context (the same
/// resolution rules as [`eval`], but over types). `aggregate_type` maps an
/// already-substituted canonical text to its column's declared type.
pub fn infer_type(
    expr: &Expr,
    schema: &Schema,
    scalars: &ScalarRegistry,
    substitution_types: &HashMap<String, DataType>,
) -> SqlResult<DataType> {
    if let Some(t) = substitution_types.get(&expr.canonical()) {
        return Ok(*t);
    }
    match expr {
        Expr::Column { name, .. } => {
            if let Some(t) = substitution_types.get(name) {
                return Ok(*t);
            }
            Ok(schema.column(name)?.dtype)
        }
        Expr::Literal(v) => Ok(v.dtype().unwrap_or(DataType::Str)),
        Expr::Star => Ok(DataType::Int),
        Expr::Func { name, .. } => scalars
            .get(name)
            .map(|f| f.ret)
            .ok_or_else(|| SqlError::Plan(format!("unknown function: {name}"))),
        Expr::Grouping(_)
        | Expr::Not(_)
        | Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::InList { .. } => Ok(DataType::Bool),
        Expr::Neg(e) => infer_type(e, schema, scalars, substitution_types),
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And
            | BinOp::Or
            | BinOp::Eq
            | BinOp::Neq
            | BinOp::Lt
            | BinOp::Lte
            | BinOp::Gt
            | BinOp::Gte => Ok(DataType::Bool),
            BinOp::Div => Ok(DataType::Float),
            _ => {
                let l = infer_type(lhs, schema, scalars, substitution_types)?;
                let r = infer_type(rhs, schema, scalars, substitution_types)?;
                Ok(if l == DataType::Int && r == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                })
            }
        },
        Expr::ScalarSubquery(_) => Ok(DataType::Float),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;
    use dc_relation::row;

    fn ctx_fixture() -> (Schema, ScalarRegistry) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        (schema, scalar::builtins())
    }

    fn eval_str(expr: &Expr, row: &Row) -> Value {
        let (schema, scalars) = ctx_fixture();
        let ctx = EvalContext::base(&schema, &scalars);
        eval(expr, row, &ctx).unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let r = row!["Chevy", 1994, 50];
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::col("units")),
            rhs: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert_eq!(eval_str(&e, &r), Value::Int(100));
        let c = Expr::Binary {
            op: BinOp::Gte,
            lhs: Box::new(Expr::col("year")),
            rhs: Box::new(Expr::Literal(Value::Int(1994))),
        };
        assert_eq!(eval_str(&c, &r), Value::Bool(true));
    }

    #[test]
    fn division_is_float() {
        let r = row!["Chevy", 1994, 50];
        let e = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::col("units")),
            rhs: Box::new(Expr::Literal(Value::Int(4))),
        };
        assert_eq!(eval_str(&e, &r), Value::Float(12.5));
        // Division by zero → NULL, not a panic.
        let z = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::col("units")),
            rhs: Box::new(Expr::Literal(Value::Int(0))),
        };
        assert_eq!(eval_str(&z, &r), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let r = Row::new(vec![Value::Null, Value::Int(1994), Value::Int(50)]);
        let null_eq = Expr::Binary {
            op: BinOp::Eq,
            lhs: Box::new(Expr::col("model")),
            rhs: Box::new(Expr::Literal(Value::str("Chevy"))),
        };
        assert_eq!(eval_str(&null_eq, &r), Value::Null);
        // NULL AND FALSE = FALSE (Kleene).
        let and = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(null_eq.clone()),
            rhs: Box::new(Expr::Literal(Value::Bool(false))),
        };
        assert_eq!(eval_str(&and, &r), Value::Bool(false));
        // NULL OR TRUE = TRUE.
        let or = Expr::Binary {
            op: BinOp::Or,
            lhs: Box::new(null_eq),
            rhs: Box::new(Expr::Literal(Value::Bool(true))),
        };
        assert_eq!(eval_str(&or, &r), Value::Bool(true));
    }

    #[test]
    fn in_list_and_between() {
        let r = row!["Chevy", 1994, 50];
        let e = Expr::InList {
            expr: Box::new(Expr::col("model")),
            list: vec![
                Expr::Literal(Value::str("Ford")),
                Expr::Literal(Value::str("Chevy")),
            ],
            negated: false,
        };
        assert_eq!(eval_str(&e, &r), Value::Bool(true));
        let b = Expr::Between {
            expr: Box::new(Expr::col("year")),
            low: Box::new(Expr::Literal(Value::Int(1990))),
            high: Box::new(Expr::Literal(Value::Int(1992))),
            negated: false,
        };
        assert_eq!(eval_str(&b, &r), Value::Bool(false));
    }

    #[test]
    fn grouping_reads_all_tokens() {
        let (schema, scalars) = ctx_fixture();
        let mut ctx = EvalContext::base(&schema, &scalars);
        ctx.substitutions.insert("model".into(), 0);
        let g = Expr::Grouping(Box::new(Expr::col("model")));
        let all_row = Row::new(vec![Value::All, Value::Int(0), Value::Int(0)]);
        assert_eq!(eval(&g, &all_row, &ctx).unwrap(), Value::Bool(true));
        let data_row = row!["Chevy", 1994, 50];
        assert_eq!(eval(&g, &data_row, &ctx).unwrap(), Value::Bool(false));
    }

    #[test]
    fn substitution_takes_precedence() {
        let (schema, scalars) = ctx_fixture();
        let mut ctx = EvalContext::base(&schema, &scalars);
        // Pretend "SUM(units)" is column 2 of the result row.
        ctx.substitutions.insert("SUM(units)".into(), 2);
        let e = Expr::Func {
            name: "sum".into(),
            distinct: false,
            args: vec![Expr::col("units")],
        };
        assert_eq!(eval(&e, &row!["x", 1, 290], &ctx).unwrap(), Value::Int(290));
    }

    #[test]
    fn type_inference() {
        let (schema, scalars) = ctx_fixture();
        let subs = HashMap::new();
        let t = |e: &Expr| infer_type(e, &schema, &scalars, &subs).unwrap();
        assert_eq!(t(&Expr::col("model")), DataType::Str);
        assert_eq!(t(&Expr::col("units")), DataType::Int);
        let div = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::col("units")),
            rhs: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert_eq!(t(&div), DataType::Float);
        let add = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::col("units")),
            rhs: Box::new(Expr::Literal(Value::Int(2))),
        };
        assert_eq!(t(&add), DataType::Int);
    }
}
