//! Scalar function registry.
//!
//! §2's histogram problem needs functions over grouping columns —
//! `Day(Time)`, `Nation(Latitude, Longitude)` — and the paper assumes
//! users can supply them ("If a Nation() function maps latitude and
//! longitude into the name of the country..."). The built-ins here cover
//! the calendar family; domain functions like `NATION` are registered by
//! the application (see `dc-warehouse`).

use crate::error::{SqlError, SqlResult};
use dc_relation::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The boxed implementation of a scalar function.
type ScalarImpl = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A scalar function: a pure mapping over values with a declared return
/// type. NULL/ALL inputs yield NULL unless the function says otherwise —
/// matching how grouping levels treat tokens.
#[derive(Clone)]
pub struct ScalarFn {
    pub name: Arc<str>,
    pub ret: DataType,
    pub arity: usize,
    f: ScalarImpl,
}

impl ScalarFn {
    pub fn new(
        name: impl AsRef<str>,
        arity: usize,
        ret: DataType,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> Self {
        ScalarFn {
            name: Arc::from(name.as_ref().to_uppercase().as_str()),
            ret,
            arity,
            f: Arc::new(f),
        }
    }

    /// Apply with token propagation: any NULL/ALL argument short-circuits
    /// to NULL.
    pub fn call(&self, args: &[Value]) -> Value {
        if args.iter().any(|v| v.is_null() || v.is_all()) {
            return Value::Null;
        }
        (self.f)(args)
    }
}

/// Case-insensitive scalar function registry.
#[derive(Clone, Default)]
pub struct ScalarRegistry {
    map: HashMap<String, ScalarFn>,
}

impl ScalarRegistry {
    pub fn new() -> Self {
        ScalarRegistry::default()
    }

    pub fn register(&mut self, f: ScalarFn) -> SqlResult<()> {
        let key = f.name.to_uppercase();
        if self.map.contains_key(&key) {
            return Err(SqlError::Plan(format!(
                "scalar function already registered: {key}"
            )));
        }
        self.map.insert(key, f);
        Ok(())
    }

    pub fn get(&self, name: &str) -> Option<&ScalarFn> {
        self.map.get(&name.to_uppercase())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(&name.to_uppercase())
    }
}

/// The built-in calendar and utility scalars.
pub fn builtins() -> ScalarRegistry {
    let mut r = ScalarRegistry::new();
    let date_fns: Vec<ScalarFn> = vec![
        // DAY(ts): the timestamp truncated to midnight — "group times into
        // days" (§2).
        ScalarFn::new("DAY", 1, DataType::Date, |args| match args[0].as_date() {
            Some(d) => Value::Date(dc_relation::Date::ymd(d.year(), d.month(), d.day())),
            None => Value::Null,
        }),
        ScalarFn::new("MONTH", 1, DataType::Int, |args| match args[0].as_date() {
            Some(d) => Value::Int(i64::from(d.month())),
            None => Value::Null,
        }),
        ScalarFn::new("YEAR", 1, DataType::Int, |args| match args[0].as_date() {
            Some(d) => Value::Int(i64::from(d.year())),
            None => Value::Null,
        }),
        ScalarFn::new("QUARTER", 1, DataType::Int, |args| {
            match args[0].as_date() {
                Some(d) => Value::Int(i64::from(d.quarter())),
                None => Value::Null,
            }
        }),
        ScalarFn::new("WEEK", 1, DataType::Int, |args| match args[0].as_date() {
            Some(d) => Value::Int(i64::from(d.week())),
            None => Value::Null,
        }),
        ScalarFn::new("WEEKDAY", 1, DataType::Int, |args| {
            match args[0].as_date() {
                Some(d) => Value::Int(i64::from(d.weekday())),
                None => Value::Null,
            }
        }),
        ScalarFn::new("ABS", 1, DataType::Float, |args| match &args[0] {
            Value::Int(i) => Value::Int(i.abs()),
            Value::Float(f) => Value::Float(f.abs()),
            Value::Null | Value::All | Value::Bool(_) | Value::Str(_) | Value::Date(_) => {
                Value::Null
            }
        }),
        ScalarFn::new("UPPER", 1, DataType::Str, |args| match args[0].as_str() {
            Some(s) => Value::str(s.to_uppercase()),
            None => Value::Null,
        }),
        ScalarFn::new("LOWER", 1, DataType::Str, |args| match args[0].as_str() {
            Some(s) => Value::str(s.to_lowercase()),
            None => Value::Null,
        }),
        // STR(x): render any value as a string — the explicit form of the
        // implicit cast SQL applies in the paper's §2 union query, where
        // integer Year columns union with 'ALL' string literals.
        ScalarFn::new("STR", 1, DataType::Str, |args| {
            Value::str(args[0].to_string())
        }),
        // FLOOR_DIV(x, n): integer bucketing for numeric histograms.
        ScalarFn::new("FLOOR_DIV", 2, DataType::Int, |args| {
            match (args[0].as_f64(), args[1].as_f64()) {
                (Some(x), Some(n)) if n != 0.0 => Value::Int((x / n).floor() as i64),
                _ => Value::Null,
            }
        }),
    ];
    for f in date_fns {
        // cube-lint: allow(panic, static list of distinct built-in names; covered by tests)
        r.register(f).expect("built-in scalar names are unique");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relation::Date;

    #[test]
    fn calendar_builtins() {
        let r = builtins();
        let ts = Value::Date(Date::new_at(1995, 6, 1, 15, 0).unwrap());
        assert_eq!(
            r.get("day").unwrap().call(std::slice::from_ref(&ts)),
            Value::Date(Date::ymd(1995, 6, 1))
        );
        assert_eq!(
            r.get("MONTH").unwrap().call(std::slice::from_ref(&ts)),
            Value::Int(6)
        );
        assert_eq!(
            r.get("Year").unwrap().call(std::slice::from_ref(&ts)),
            Value::Int(1995)
        );
        assert_eq!(r.get("QUARTER").unwrap().call(&[ts]), Value::Int(2));
    }

    #[test]
    fn tokens_propagate_as_null() {
        let r = builtins();
        assert_eq!(r.get("YEAR").unwrap().call(&[Value::Null]), Value::Null);
        assert_eq!(r.get("YEAR").unwrap().call(&[Value::All]), Value::Null);
        assert_eq!(
            r.get("FLOOR_DIV")
                .unwrap()
                .call(&[Value::Int(7), Value::Null]),
            Value::Null
        );
    }

    #[test]
    fn floor_div_buckets() {
        let r = builtins();
        let f = r.get("FLOOR_DIV").unwrap();
        assert_eq!(f.call(&[Value::Int(250), Value::Int(100)]), Value::Int(2));
        assert_eq!(f.call(&[Value::Int(-1), Value::Int(100)]), Value::Int(-1));
        assert_eq!(f.call(&[Value::Int(5), Value::Int(0)]), Value::Null);
    }

    #[test]
    fn custom_registration_no_shadowing() {
        let mut r = builtins();
        let nation = ScalarFn::new("NATION", 2, DataType::Str, |_| Value::str("USA"));
        r.register(nation.clone()).unwrap();
        assert!(r.contains("nation"));
        assert!(r.register(nation).is_err());
    }
}
