//! `dc_serve` — the cube service over TCP.
//!
//! Serves the paper's demo `Sales` table through the dc-sql engine behind
//! admission control. Requests are length-prefixed SQL text; responses
//! are `OK` tables or `ERR <CODE> <retry_after_ms>` typed errors (see
//! `dc_sql::wire`).
//!
//! ```text
//! dc_serve [--addr 127.0.0.1:4780]
//!          [--max-concurrent N] [--cheap-reserved N] [--cheap-cells N]
//!          [--global-cells N] [--min-grant-cells N] [--queue-depth N]
//!          [--max-connections N]
//!          [--no-cube-cache] [--cache-cells N]
//!          [--smoke]
//! ```
//!
//! `--smoke` runs the self-test used by `verify.sh`: start on an
//! ephemeral port with a deliberately tiny budget, prove that a cheap
//! GROUP BY succeeds while a 3-dimension CUBE is shed with a typed
//! `RESOURCE_EXHAUSTED` frame and a retry hint, that a parse error
//! leaves the connection usable, then shut down cleanly. Exit code 0 on
//! success.

use dc_relation::{row, DataType, Schema, Table};
use dc_sql::wire::{self, Response};
use dc_sql::{serve, Engine, ServerConfig, ServiceConfig};
use std::net::TcpStream;
use std::process::ExitCode;

struct Args {
    addr: String,
    service: ServiceConfig,
    server: ServerConfig,
    /// Engine-wide lattice cache switch (sessions can still opt out with
    /// `SET CUBE_CACHE OFF`; `--no-cube-cache` disables it for everyone).
    cube_cache: bool,
    /// Lattice-cache cell budget override (`--cache-cells N`).
    cache_cells: Option<u64>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4780".to_string(),
        service: ServiceConfig::default(),
        server: ServerConfig::default(),
        cube_cache: true,
        cache_cells: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |name: &str, it: &mut dyn Iterator<Item = String>| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--addr" => {
                args.addr = it
                    .next()
                    .ok_or_else(|| "--addr needs a value".to_string())?;
            }
            "--max-concurrent" => args.service.max_concurrent = num(&flag, &mut it)? as usize,
            "--cheap-reserved" => args.service.cheap_reserved = num(&flag, &mut it)? as usize,
            "--cheap-cells" => args.service.cheap_cells = num(&flag, &mut it)?,
            "--global-cells" => args.service.global_cells = num(&flag, &mut it)?,
            "--min-grant-cells" => args.service.min_grant_cells = num(&flag, &mut it)?,
            "--queue-depth" => args.service.queue_depth = num(&flag, &mut it)? as usize,
            "--max-connections" => args.server.max_connections = num(&flag, &mut it)? as usize,
            "--no-cube-cache" => args.cube_cache = false,
            "--cache-cells" => args.cache_cells = Some(num(&flag, &mut it)?),
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// The paper's Table 4 sales data, enough for demo queries.
fn demo_table() -> Result<Table, String> {
    let schema = Schema::from_pairs(&[
        ("model", DataType::Str),
        ("year", DataType::Int),
        ("color", DataType::Str),
        ("units", DataType::Int),
    ]);
    let rows = vec![
        row!["Chevy", 1994, "black", 50],
        row!["Chevy", 1994, "white", 40],
        row!["Chevy", 1995, "black", 115],
        row!["Chevy", 1995, "white", 85],
        row!["Ford", 1994, "black", 50],
        row!["Ford", 1994, "white", 10],
        row!["Ford", 1995, "black", 85],
        row!["Ford", 1995, "white", 75],
    ];
    Table::new(schema, rows).map_err(|e| format!("demo table: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.smoke {
        return smoke();
    }
    let mut engine = Engine::with_service(args.service);
    engine.cube_cache().set_enabled(args.cube_cache);
    if let Some(cells) = args.cache_cells {
        engine.cube_cache().set_budget_cells(cells);
    }
    engine
        .register_table("Sales", demo_table()?)
        .map_err(|e| format!("register: {e}"))?;
    let handle =
        serve(&engine, &args.addr, args.server).map_err(|e| format!("bind {}: {e}", args.addr))?;
    eprintln!("dc_serve listening on {}", handle.local_addr());
    handle.wait();
    Ok(())
}

fn expect_table(resp: &Response, what: &str) -> Result<usize, String> {
    match resp {
        Response::Table { rows, .. } => Ok(rows.len()),
        Response::Error { code, message, .. } => {
            Err(format!("{what}: expected table, got ERR {code}: {message}"))
        }
    }
}

/// The verify.sh self-test: overload behaviour end to end over TCP.
fn smoke() -> Result<(), String> {
    // A budget sized so the cheap lane fits a plain GROUP BY (estimate:
    // 1 set × 9 cells) but a 3-dimension CUBE (8 sets × 9 = 72 cells)
    // overflows the whole global budget and must be shed.
    let service = ServiceConfig {
        max_concurrent: 2,
        cheap_reserved: 1,
        cheap_cells: 32,
        global_cells: 16,
        min_grant_cells: 1,
        queue_depth: 2,
    };
    let mut engine = Engine::with_service(service);
    engine
        .register_table("Sales", demo_table()?)
        .map_err(|e| format!("register: {e}"))?;
    let handle =
        serve(&engine, "127.0.0.1:0", ServerConfig::default()).map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr();

    let mut conn = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let ask = |conn: &mut TcpStream, sql: &str| -> Result<Response, String> {
        wire::request(conn, sql).map_err(|e| format!("request failed: {e}"))
    };

    // 1. Cheap GROUP BY rides the reserved lane, exempt from the budget.
    let resp = ask(
        &mut conn,
        "SELECT model, SUM(units) AS total FROM Sales GROUP BY model",
    )?;
    let n = expect_table(&resp, "cheap group by")?;
    if n != 2 {
        return Err(format!("cheap group by: expected 2 rows, got {n}"));
    }

    // 2. A 3-dimension CUBE overflows the 16-cell global budget: typed
    //    shed with Resource::Cells, and the connection survives.
    let resp = ask(
        &mut conn,
        "SELECT model, year, color, SUM(units) AS total FROM Sales \
         GROUP BY CUBE model, year, color",
    )?;
    match &resp {
        Response::Error { code, .. } if code == "RESOURCE_EXHAUSTED" => {}
        other => return Err(format!("cube under budget: expected shed, got {other:?}")),
    }

    // 3. Parse errors are typed frames, not dropped connections.
    let resp = ask(&mut conn, "SELEKT nonsense FROM nowhere")?;
    match &resp {
        Response::Error { code, .. } if code == "PARSE" || code == "LEX" => {}
        other => return Err(format!("parse error: expected ERR PARSE, got {other:?}")),
    }

    // 4. The same connection still serves queries after both errors.
    let resp = ask(&mut conn, "SELECT COUNT(*) AS n FROM Sales GROUP BY model")?;
    expect_table(&resp, "post-error query")?;

    // 5. The repeated cheap query is now a lattice-cache hit (the first
    //    run materialized the MODEL view) and must return the same rows;
    //    `SET CUBE_CACHE OFF` parses over the wire and the base-scan
    //    answer agrees.
    let resp = ask(
        &mut conn,
        "SELECT model, SUM(units) AS total FROM Sales GROUP BY model",
    )?;
    if expect_table(&resp, "cached group by")? != 2 {
        return Err("cached group by: expected 2 rows".to_string());
    }
    if engine.cube_cache().counters().hits == 0 {
        return Err("cube cache: expected at least one hit".to_string());
    }
    expect_table(&ask(&mut conn, "SET CUBE_CACHE OFF")?, "set cube_cache off")?;
    let resp = ask(
        &mut conn,
        "SELECT model, SUM(units) AS total FROM Sales GROUP BY model",
    )?;
    if expect_table(&resp, "uncached group by")? != 2 {
        return Err("uncached group by: expected 2 rows".to_string());
    }

    // 6. The write path works over the wire: INSERT a batch, read the
    //    new total back, DELETE it again.
    let resp = ask(
        &mut conn,
        "INSERT INTO Sales VALUES ('Dodge', 1995, 'red', 7), ('Dodge', 1995, 'blue', 3)",
    )?;
    expect_table(&resp, "insert batch")?;
    let resp = ask(
        &mut conn,
        "SELECT model, SUM(units) AS total FROM Sales GROUP BY model",
    )?;
    if expect_table(&resp, "post-insert group by")? != 3 {
        return Err("post-insert group by: expected 3 models".to_string());
    }
    let resp = ask(&mut conn, "DELETE FROM Sales WHERE model = 'Dodge'")?;
    expect_table(&resp, "delete batch")?;
    let resp = ask(
        &mut conn,
        "SELECT model, SUM(units) AS total FROM Sales GROUP BY model",
    )?;
    if expect_table(&resp, "post-delete group by")? != 2 {
        return Err("post-delete group by: expected 2 models".to_string());
    }

    drop(conn);
    handle.shutdown();
    eprintln!(
        "dc_serve --smoke: OK (cheap lane served, cube shed typed, errors survived, \
         cache hit observed, insert/delete round-tripped)"
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dc_serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
