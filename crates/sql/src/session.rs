//! Per-session state of the concurrent cube service.
//!
//! One [`crate::Engine`] is shared by N sessions; everything that used to
//! be engine-global but is really *per caller* lives here: the `SET ...`
//! execution options, the cancellation token, and the admission verdict
//! of the last statement. Two sessions on one engine can therefore run
//! with different budgets and cancel independently — the latent
//! cross-session race of the single-owner engine (where one session's
//! `SET TIMEOUT_MS` or cancel token clobbered another's) is gone by
//! construction.
//!
//! A statement's lifecycle:
//!
//! 1. parse;
//! 2. estimate its cost against a catalog snapshot ([`QueryCost`] — the
//!    upper bound `sets × (rows + 1)` per UNION branch);
//! 3. pass admission ([`crate::admission::AdmissionController`]); the
//!    deadline is computed *before* queueing, so time spent waiting for
//!    a slot counts against the statement's own `TIMEOUT_MS`;
//! 4. execute against the snapshot with the granted cell reservation
//!    folded into the statement's `ExecLimits`;
//! 5. release the permit (RAII) and record the admission stats.
//!
//! The whole lifecycle runs inside [`datacube::exec::guard`], so a panic
//! anywhere — a UDA, a poisoned lock, an injected fault — unwinds into
//! `CubeError::AggPanicked` for this session only; the shared engine and
//! every other session keep running.

use crate::admission::{AdmissionController, Permit, QueryCost};
use crate::ast::{Expr, SelectStmt, Statement, TableRef};
use crate::cache::CubeCache;
use crate::catalog::{CatalogSnapshot, SharedCatalog};
use crate::engine::QueryRuntime;
use crate::error::{SqlError, SqlResult};
use crate::eval::{eval, EvalContext};
use crate::parser::parse;
use datacube::{CancelToken, ExecContext, ExecLimits, ExecStats};
use dc_relation::{ColumnDef, DataType, Row, Schema, Table, Value};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Session-level execution governance, applied to every aggregation
/// query. `0` means "no limit" / "default" throughout (`vectorized`
/// defaults to on; `SET VECTORIZED = 0` turns it off).
#[derive(Debug, Clone)]
pub(crate) struct SessionOptions {
    pub(crate) max_cells: u64,
    pub(crate) max_memory_bytes: u64,
    pub(crate) timeout_ms: u64,
    pub(crate) threads: u64,
    pub(crate) vectorized: bool,
    /// `SET CUBE_CACHE {ON|OFF}` — whether this session's statements may
    /// be answered from (and populate) the engine's lattice cache.
    pub(crate) cube_cache: bool,
    pub(crate) cancel: Option<CancelToken>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            max_cells: 0,
            max_memory_bytes: 0,
            timeout_ms: 0,
            threads: 0,
            vectorized: true,
            cube_cache: true,
            cancel: None,
        }
    }
}

impl SessionOptions {
    /// Build the statement's `ExecLimits`: the session budgets, the
    /// remaining share of the deadline (queue time already spent), and
    /// the admission grant folded into the cell cap.
    fn limits(&self, deadline: Option<Instant>, granted_cells: u64) -> ExecLimits {
        let max_cells = match (self.max_cells, granted_cells) {
            (0, g) => g,
            (m, 0) => m,
            (m, g) => m.min(g),
        };
        let mut limits = ExecLimits::none()
            .max_cells(max_cells)
            .max_memory_bytes(self.max_memory_bytes);
        if let Some(d) = deadline {
            // Already-expired deadlines become a zero timeout, tripping
            // at the first checkpoint with `Resource::TimeMs`.
            limits = limits.timeout(d.saturating_duration_since(Instant::now()));
        }
        if let Some(token) = &self.cancel {
            limits = limits.cancel_token(token.clone());
        }
        limits
    }
}

/// One caller's handle onto a shared engine: private options and cancel
/// token, shared catalog and admission controller. Cheap to create (two
/// `Arc` clones), `Send + Sync`, and safe to use from its own thread.
pub struct Session {
    catalog: SharedCatalog,
    admission: Arc<AdmissionController>,
    cache: Arc<CubeCache>,
    opts: Mutex<SessionOptions>,
    /// Admission stats of the most recent statement (queue wait, grant,
    /// verdict) — observability for callers and the stress suites.
    last: Mutex<ExecStats>,
}

impl Session {
    pub(crate) fn new(
        catalog: SharedCatalog,
        admission: Arc<AdmissionController>,
        cache: Arc<CubeCache>,
    ) -> Self {
        Session {
            catalog,
            admission,
            cache,
            opts: Mutex::new(SessionOptions::default()),
            last: Mutex::new(ExecStats::default()),
        }
    }

    /// Parse and execute one statement under this session's governance.
    /// Never panics: the whole statement lifecycle is wrapped in the
    /// panic guard, so a UDA bomb or injected fault becomes a typed
    /// `CubeError::AggPanicked` scoped to this call.
    pub fn execute(&self, sql: &str) -> SqlResult<Table> {
        match datacube::exec::guard("session", || self.execute_inner(sql)) {
            Ok(result) => result,
            Err(e) => Err(SqlError::Cube(e)),
        }
    }

    fn execute_inner(&self, sql: &str) -> SqlResult<Table> {
        match parse(sql)? {
            Statement::Select(stmt) => self.exec_select_governed(&stmt),
            Statement::Explain(stmt) => {
                // EXPLAIN is metadata-only: no scan, no cube, no
                // admission — it must work even on an overloaded engine.
                let opts = self.options();
                let runtime = QueryRuntime {
                    snap: self.catalog.snapshot(),
                    limits: opts.limits(None, 0),
                    threads: opts.threads,
                    vectorized: opts.vectorized,
                    // EXPLAIN must not perturb cache traffic counters.
                    cache: None,
                    cache_touch: std::cell::Cell::new((false, 0)),
                };
                runtime.explain_select(&stmt)
            }
            Statement::Set { name, value } => self.exec_set(&name, value),
            Statement::Insert { table, rows } => self.exec_insert_governed(&table, &rows),
            Statement::Delete {
                table,
                where_clause,
            } => self.exec_delete_governed(&table, where_clause.as_ref()),
            Statement::Update {
                table,
                sets,
                where_clause,
            } => self.exec_update_governed(&table, &sets, where_clause.as_ref()),
        }
    }

    /// The governed SELECT path: estimate → admit → execute → release.
    fn exec_select_governed(&self, stmt: &SelectStmt) -> SqlResult<Table> {
        let opts = self.options();
        let snap = self.catalog.snapshot();
        let cost = estimate_cost(stmt, &snap);
        // The deadline is fixed *before* admission: a statement that
        // spends its whole TIMEOUT_MS in the queue gets (almost) none of
        // it for execution, exactly as a caller-side timer would observe.
        let deadline =
            (opts.timeout_ms > 0).then(|| Instant::now() + Duration::from_millis(opts.timeout_ms));
        let permit = self
            .admission
            .admit(&cost, deadline, opts.cancel.as_ref())
            .map_err(|e| {
                self.record_admission(&admission_stats_of(&e));
                SqlError::Cube(e)
            })?;
        self.record_permit(&permit);
        let runtime = QueryRuntime {
            snap,
            limits: opts.limits(deadline, permit.granted_cells()),
            threads: opts.threads,
            vectorized: opts.vectorized,
            cache: opts.cube_cache.then(|| Arc::clone(&self.cache)),
            cache_touch: std::cell::Cell::new((false, 0)),
        };
        // `permit` is still alive here: the reservation covers the whole
        // execution and is released when it drops at scope end.
        let result = runtime.exec_select(stmt);
        let (hit, bits) = runtime.cache_touch.get();
        if hit {
            let mut last = self.last.lock().unwrap_or_else(|p| p.into_inner());
            last.answered_from_cache = true;
            last.cache_ancestor_bits = bits;
        }
        result
    }

    /// The governed INSERT path: one statement is one delta batch.
    /// Admission prices the batch like a one-set aggregation over its own
    /// rows, so a flood of fat batches queues (or sheds) behind the same
    /// controller as queries — the batch budget of the issue text.
    ///
    /// Publication is optimistic: build the enlarged table against a
    /// snapshot, then compare-and-swap it in by catalog version; losing a
    /// race to a concurrent writer just means rebasing the (already
    /// evaluated) rows on a fresh snapshot. Readers therefore see whole
    /// batches only — a torn batch would require observing a table that
    /// was never published. On success, retained cache views absorb the
    /// delta instead of being invalidated.
    fn exec_insert_governed(&self, table: &str, rows: &[Vec<Expr>]) -> SqlResult<Table> {
        let opts = self.options();
        let cost = QueryCost {
            rows: rows.len() as u64,
            sets: 1,
            cells: rows.len() as u64,
        };
        let deadline =
            (opts.timeout_ms > 0).then(|| Instant::now() + Duration::from_millis(opts.timeout_ms));
        let permit = self
            .admission
            .admit(&cost, deadline, opts.cancel.as_ref())
            .map_err(|e| {
                self.record_admission(&admission_stats_of(&e));
                SqlError::Cube(e)
            })?;
        self.record_permit(&permit);
        let ctx = ExecContext::new(&opts.limits(deadline, permit.granted_cells()), 1);

        // Evaluate the literal rows once, against an empty scope: column
        // references have nothing to bind to and error in planning terms.
        let empty_schema = Schema::new(vec![])?;
        let snap = self.catalog.snapshot();
        let ectx = EvalContext::base(&empty_schema, &snap.scalars);
        let scratch = Row::new(vec![]);
        let mut new_rows = Vec::with_capacity(rows.len());
        for (i, exprs) in rows.iter().enumerate() {
            ctx.tick(i).map_err(SqlError::Cube)?;
            let vals = exprs
                .iter()
                .map(|e| eval(e, &scratch, &ectx))
                .collect::<SqlResult<Vec<Value>>>()?;
            new_rows.push(Row::new(vals));
        }

        loop {
            ctx.checkpoint().map_err(SqlError::Cube)?;
            let snap = self.catalog.snapshot();
            let old = snap.table(table)?;
            let expected = snap.table_version(table);
            let mut next = old.rows().to_vec();
            next.extend(new_rows.iter().cloned());
            // Table::new re-validates every row against the schema, so a
            // bad literal rejects the whole batch before publication.
            let published = Table::new(old.schema().clone(), next)?;
            let swapped = self
                .catalog
                .with_write(|c| c.replace_if_version(table, expected, published))?;
            if let Some(new_version) = swapped {
                let delta = Table::new(old.schema().clone(), new_rows)?;
                self.cache.apply_delta(table, new_version, &delta);
                return dml_result(table, "inserted", delta.len() as i64);
            }
        }
    }

    /// The governed DELETE path: matching rows form one delete batch.
    /// Same optimistic republish as INSERT; retraction is the holistic
    /// direction (§6: "max is ... holistic for DELETE"), so cached views
    /// fall back to version-bump invalidation rather than absorbing.
    fn exec_delete_governed(&self, table: &str, predicate: Option<&Expr>) -> SqlResult<Table> {
        let opts = self.options();
        let snap = self.catalog.snapshot();
        let scan_rows = snap.table(table).map(|t| t.len() as u64).unwrap_or(0);
        let cost = QueryCost {
            rows: scan_rows,
            sets: 1,
            cells: scan_rows,
        };
        let deadline =
            (opts.timeout_ms > 0).then(|| Instant::now() + Duration::from_millis(opts.timeout_ms));
        let permit = self
            .admission
            .admit(&cost, deadline, opts.cancel.as_ref())
            .map_err(|e| {
                self.record_admission(&admission_stats_of(&e));
                SqlError::Cube(e)
            })?;
        self.record_permit(&permit);
        let ctx = ExecContext::new(&opts.limits(deadline, permit.granted_cells()), 1);

        loop {
            ctx.checkpoint().map_err(SqlError::Cube)?;
            let snap = self.catalog.snapshot();
            let old = snap.table(table)?;
            let expected = snap.table_version(table);
            let ectx = EvalContext::base(old.schema(), &snap.scalars);
            let mut kept = Vec::with_capacity(old.len());
            let mut deleted = 0i64;
            for (i, row) in old.rows().iter().enumerate() {
                ctx.tick(i).map_err(SqlError::Cube)?;
                let matches = match predicate {
                    None => true,
                    // SQL semantics: NULL (and ALL) predicates keep the row.
                    Some(p) => eval(p, row, &ectx)? == Value::Bool(true),
                };
                if matches {
                    deleted += 1;
                } else {
                    kept.push(row.clone());
                }
            }
            if deleted == 0 {
                // Nothing matched: no republish, no version bump, caches
                // stay warm.
                return dml_result(table, "deleted", 0);
            }
            let published = Table::new(old.schema().clone(), kept)?;
            let swapped = self
                .catalog
                .with_write(|c| c.replace_if_version(table, expected, published))?;
            if swapped.is_some() {
                self.cache.invalidate_table(table);
                return dml_result(table, "deleted", deleted);
            }
        }
    }

    /// The governed UPDATE path: sugar for delete-plus-insert. Matching
    /// rows are retracted and their rewritten images appended, as one
    /// batch under a *single* admission permit — an UPDATE can never be
    /// half-admitted, and readers see old images or new images, never a
    /// mix. Assignment expressions see the old row (SQL semantics), so
    /// `SET qty = qty + 1` works. Rewriting retracts old cell values, the
    /// holistic direction, so cached views are invalidated rather than
    /// absorbed, exactly as DELETE does.
    fn exec_update_governed(
        &self,
        table: &str,
        sets: &[(String, Expr)],
        predicate: Option<&Expr>,
    ) -> SqlResult<Table> {
        let opts = self.options();
        let snap = self.catalog.snapshot();
        let scan_rows = snap.table(table).map(|t| t.len() as u64).unwrap_or(0);
        let cost = QueryCost {
            rows: scan_rows,
            sets: 1,
            cells: scan_rows,
        };
        let deadline =
            (opts.timeout_ms > 0).then(|| Instant::now() + Duration::from_millis(opts.timeout_ms));
        let permit = self
            .admission
            .admit(&cost, deadline, opts.cancel.as_ref())
            .map_err(|e| {
                self.record_admission(&admission_stats_of(&e));
                SqlError::Cube(e)
            })?;
        self.record_permit(&permit);
        let ctx = ExecContext::new(&opts.limits(deadline, permit.granted_cells()), 1);

        loop {
            ctx.checkpoint().map_err(SqlError::Cube)?;
            let snap = self.catalog.snapshot();
            let old = snap.table(table)?;
            let expected = snap.table_version(table);
            // Resolve assignment targets once per attempt: a bad column
            // name rejects the statement before any row is touched.
            let targets = sets
                .iter()
                .map(|(col, expr)| Ok((old.schema().index_of(col)?, expr)))
                .collect::<Result<Vec<_>, dc_relation::RelError>>()?;
            let ectx = EvalContext::base(old.schema(), &snap.scalars);
            let mut next = Vec::with_capacity(old.len());
            let mut updated = 0i64;
            for (i, row) in old.rows().iter().enumerate() {
                ctx.tick(i).map_err(SqlError::Cube)?;
                let matches = match predicate {
                    None => true,
                    // SQL semantics: NULL (and ALL) predicates keep the
                    // row unchanged.
                    Some(p) => eval(p, row, &ectx)? == Value::Bool(true),
                };
                if !matches {
                    next.push(row.clone());
                    continue;
                }
                updated += 1;
                // Every right-hand side is evaluated against the *old*
                // row before any assignment lands, so `SET a = b, b = a`
                // swaps rather than clobbers.
                let mut vals = row.values().to_vec();
                for &(idx, expr) in &targets {
                    vals[idx] = eval(expr, row, &ectx)?;
                }
                next.push(Row::new(vals));
            }
            if updated == 0 {
                // Nothing matched: no republish, no version bump, caches
                // stay warm.
                return dml_result(table, "updated", 0);
            }
            // Table::new re-validates every rewritten row against the
            // schema, so a type-changing assignment rejects the batch
            // before publication.
            let published = Table::new(old.schema().clone(), next)?;
            let swapped = self
                .catalog
                .with_write(|c| c.replace_if_version(table, expected, published))?;
            if swapped.is_some() {
                self.cache.invalidate_table(table);
                return dml_result(table, "updated", updated);
            }
        }
    }

    fn options(&self) -> SessionOptions {
        self.opts.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn record_permit(&self, permit: &Permit) {
        let stats = ExecStats {
            admission: permit.verdict,
            queue_wait_ms: permit.queue_wait.as_millis() as u32,
            granted_cells: permit.granted_cells(),
            ..Default::default()
        };
        self.record_admission(&stats);
    }

    fn record_admission(&self, stats: &ExecStats) {
        *self.last.lock().unwrap_or_else(|p| p.into_inner()) = *stats;
    }

    /// Admission outcome of this session's most recent statement:
    /// verdict, queue wait, and granted cell reservation.
    pub fn last_admission(&self) -> ExecStats {
        *self.last.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Set one session execution option. Recognized names
    /// (case-insensitive): `MAX_CELLS`, `MAX_MEMORY_BYTES`, `TIMEOUT_MS`,
    /// `THREADS`, `VECTORIZED`, `CUBE_CACHE`. `0` resets the option to
    /// unlimited/default — except `VECTORIZED` and `CUBE_CACHE`, where `0`
    /// disables the feature and any non-zero value re-enables it (both
    /// default on; the SQL form also accepts `SET CUBE_CACHE {ON|OFF}`).
    /// Also the programmatic form of the `SET` statement. Scoped to this
    /// session: other sessions of the same engine are unaffected.
    pub fn set_option(&self, name: &str, value: i64) -> SqlResult<()> {
        if value < 0 {
            return Err(SqlError::Plan(format!(
                "option {name} must be non-negative, got {value}"
            )));
        }
        let value = value as u64;
        let mut opts = self.opts.lock().unwrap_or_else(|p| p.into_inner());
        match name.to_uppercase().as_str() {
            "MAX_CELLS" => opts.max_cells = value,
            "MAX_MEMORY_BYTES" => opts.max_memory_bytes = value,
            "TIMEOUT_MS" => opts.timeout_ms = value,
            "THREADS" => opts.threads = value,
            "VECTORIZED" => opts.vectorized = value != 0,
            "CUBE_CACHE" => opts.cube_cache = value != 0,
            other => {
                return Err(SqlError::Plan(format!(
                    "unknown option: {other} (expected MAX_CELLS, MAX_MEMORY_BYTES, \
                     TIMEOUT_MS, THREADS, VECTORIZED, or CUBE_CACHE)"
                )))
            }
        }
        Ok(())
    }

    /// Attach (or clear, with `None`) a cancellation token observed by
    /// every subsequent aggregation query on *this session* — including
    /// time spent waiting in the admission queue.
    pub fn set_cancel_token(&self, token: Option<CancelToken>) {
        self.opts.lock().unwrap_or_else(|p| p.into_inner()).cancel = token;
    }

    /// `SET <option> = <value>`: store the option and return a one-row
    /// confirmation relation.
    fn exec_set(&self, name: &str, value: i64) -> SqlResult<Table> {
        self.set_option(name, value)?;
        let schema = Schema::new(vec![
            ColumnDef::new("option", DataType::Str),
            ColumnDef::new("value", DataType::Int),
        ])?;
        let mut out = Table::empty(schema);
        out.push_unchecked(Row::new(vec![
            Value::str(name.to_uppercase()),
            Value::Int(value),
        ]));
        Ok(out)
    }
}

/// One-row DML confirmation relation: `(table, <verb>) = (name, count)`.
fn dml_result(table: &str, verb: &str, count: i64) -> SqlResult<Table> {
    let schema = Schema::new(vec![
        ColumnDef::new("table", DataType::Str),
        ColumnDef::new(verb, DataType::Int),
    ])?;
    let mut out = Table::empty(schema);
    out.push_unchecked(Row::new(vec![
        Value::str(table.to_uppercase()),
        Value::Int(count),
    ]));
    Ok(out)
}

/// Extract the admission-relevant stats carried by an admission error so
/// the session can record them (shed verdict, queue wait, retry hint).
fn admission_stats_of(e: &datacube::CubeError) -> ExecStats {
    match e {
        datacube::CubeError::ResourceExhausted { stats, .. }
        | datacube::CubeError::Cancelled { stats } => *stats,
        _ => ExecStats::default(),
    }
}

/// Upper-bound cost estimate for one statement against a snapshot:
/// per UNION branch, `sets × (rows + 1)` cells where `rows` is the
/// worst-case size of the FROM (joins multiply), summed across branches.
/// Unknown tables estimate as 0 rows — the statement will fail in
/// planning anyway, and a cheap admission keeps that error fast.
pub(crate) fn estimate_cost(stmt: &SelectStmt, snap: &CatalogSnapshot) -> QueryCost {
    fn from_rows(from: &TableRef, snap: &CatalogSnapshot) -> u64 {
        match from {
            TableRef::Named(name) => snap.table(name).map(|t| t.len() as u64).unwrap_or(0),
            TableRef::JoinUsing { left, right, .. } => {
                // Inner-join upper bound: the cross product.
                from_rows(left, snap).saturating_mul(from_rows(right, snap).max(1))
            }
        }
    }
    let mut max_rows = 0u64;
    let mut max_sets = 1u64;
    let mut cells = 0u64;
    let mut cursor = Some(stmt);
    while let Some(sel) = cursor {
        let rows = from_rows(&sel.from, snap);
        let sets = match &sel.group_by {
            Some(g) => match &g.grouping_sets {
                Some(sets) => sets.len() as u64,
                None => {
                    let cube_bits = (g.cube.len() as u32).min(40);
                    ((g.rollup.len() as u64) + 1).saturating_mul(1u64 << cube_bits)
                }
            },
            None => 1,
        };
        max_rows = max_rows.max(rows);
        max_sets = max_sets.max(sets);
        cells = cells.saturating_add(sets.saturating_mul(rows.saturating_add(1)));
        cursor = sel.union.as_ref().map(|(_, rhs)| rhs.as_ref());
    }
    QueryCost {
        rows: max_rows,
        sets: max_sets,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use dc_relation::row;

    fn snapshot_with(rows: i64) -> CatalogSnapshot {
        let shared = SharedCatalog::new();
        shared
            .with_write(|c: &mut Catalog| {
                let schema = Schema::from_pairs(&[
                    ("a", DataType::Int),
                    ("b", DataType::Int),
                    ("c", DataType::Int),
                ]);
                let data: Vec<Row> = (0..rows).map(|i| row![i, i % 3, 1i64]).collect();
                c.register_table("t", Table::new(schema, data).unwrap())
            })
            .unwrap();
        shared.snapshot()
    }

    fn cost_of(sql: &str, snap: &CatalogSnapshot) -> QueryCost {
        let Ok(Statement::Select(stmt)) = parse(sql) else {
            panic!("not a select: {sql}");
        };
        estimate_cost(&stmt, snap)
    }

    #[test]
    fn cube_estimates_two_to_the_n_sets() {
        let snap = snapshot_with(10);
        let cost = cost_of("SELECT SUM(c) FROM t GROUP BY CUBE a, b", &snap);
        assert_eq!(cost.sets, 4);
        assert_eq!(cost.rows, 10);
        assert_eq!(cost.cells, 4 * 11);
    }

    #[test]
    fn plain_group_by_is_one_set() {
        let snap = snapshot_with(10);
        let cost = cost_of("SELECT a, SUM(c) FROM t GROUP BY a", &snap);
        assert_eq!(cost.sets, 1);
        assert_eq!(cost.cells, 11);
    }

    #[test]
    fn rollup_and_union_compose() {
        let snap = snapshot_with(10);
        // ROLLUP a, b → 3 sets; UNION adds a 1-set branch.
        let cost = cost_of(
            "SELECT a, b, SUM(c) FROM t GROUP BY ROLLUP a, b \
             UNION ALL SELECT a, b, SUM(c) FROM t GROUP BY a, b",
            &snap,
        );
        assert_eq!(cost.sets, 3);
        assert_eq!(cost.cells, 3 * 11 + 11);
    }

    #[test]
    fn unknown_table_estimates_zero_rows() {
        let snap = snapshot_with(10);
        let cost = cost_of("SELECT SUM(x) FROM nope GROUP BY CUBE x", &snap);
        assert_eq!(cost.rows, 0);
        assert_eq!(cost.cells, 2); // 2 sets × (0 + 1)
    }
}
