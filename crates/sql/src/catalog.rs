//! The shared catalog: tables, aggregate functions, and scalar functions
//! behind one poison-tolerant `RwLock`.
//!
//! One engine serves many concurrent sessions (the paper positions CUBE
//! as an *interactive* operator — §1's "users of data analysis tools"),
//! so the name→object maps that used to live inside a single-owner
//! `Engine` are shared: registration takes the write lock, and query
//! execution takes a cheap [`CatalogSnapshot`] — `Arc` clones of the
//! tables plus shallow clones of the two registries — so no lock is held
//! while a query runs. A long 2^N cube therefore never blocks another
//! session's registration, and a writer never blocks readers for longer
//! than a map clone.
//!
//! Poisoning: a panicking session unwinds through `catch_unwind` in the
//! session layer, which can leave the `RwLock` poisoned. Every accessor
//! here recovers with `into_inner` — the catalog holds plain maps whose
//! invariants cannot be torn mid-update (each registration is a single
//! `insert`), so the poison flag carries no information for us.

use crate::error::{SqlError, SqlResult};
use crate::scalar::{self, ScalarFn, ScalarRegistry};
use dc_aggregate::{AggRef, Registry};
use dc_relation::Table;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// The mutable name→object maps, guarded by [`SharedCatalog`].
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    /// Per-table version, bumped by [`Catalog::update_table`]. Cached
    /// subcube views are keyed by `(name, version)`, so republishing a
    /// table under the same name makes every stale view unreachable.
    versions: HashMap<String, u64>,
    aggs: Registry,
    scalars: ScalarRegistry,
}

impl Catalog {
    /// A catalog preloaded with the built-in aggregate and scalar
    /// functions.
    pub fn new() -> Self {
        Catalog {
            tables: HashMap::new(),
            versions: HashMap::new(),
            aggs: dc_aggregate::builtins(),
            scalars: scalar::builtins(),
        }
    }

    /// Register a base table (case-insensitive name).
    pub fn register_table(&mut self, name: impl AsRef<str>, table: Table) -> SqlResult<()> {
        let key = name.as_ref().to_uppercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::Plan(format!("table already registered: {key}")));
        }
        self.versions.insert(key.clone(), 1);
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Replace a registered table's contents, bumping its version — the
    /// maintenance path: a `MaterializedCube` (or any writer) republishes
    /// its current state under the same name, and every cached view keyed
    /// to the old version becomes unreachable.
    pub fn update_table(&mut self, name: impl AsRef<str>, table: Table) -> SqlResult<()> {
        let key = name.as_ref().to_uppercase();
        if !self.tables.contains_key(&key) {
            return Err(SqlError::Plan(format!("unknown table: {key}")));
        }
        *self.versions.entry(key.clone()).or_insert(0) += 1;
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Compare-and-swap republish for the SQL write path: replace the
    /// table's contents only if its version is still `expected`, and
    /// return the new version on success. `Ok(None)` means another writer
    /// won the race — the caller re-reads a fresh snapshot, rebases its
    /// delta, and retries; no torn state is possible because the whole
    /// swap happens under the catalog write lock.
    pub fn replace_if_version(
        &mut self,
        name: impl AsRef<str>,
        expected: u64,
        table: Table,
    ) -> SqlResult<Option<u64>> {
        let key = name.as_ref().to_uppercase();
        if !self.tables.contains_key(&key) {
            return Err(SqlError::Plan(format!("unknown table: {key}")));
        }
        let version = self.versions.entry(key.clone()).or_insert(0);
        if *version != expected {
            return Ok(None);
        }
        *version += 1;
        let new_version = *version;
        self.tables.insert(key, Arc::new(table));
        Ok(Some(new_version))
    }

    /// Register a user-defined aggregate (the §1.2 extension mechanism).
    pub fn register_aggregate(&mut self, f: AggRef) -> SqlResult<()> {
        self.aggs.register(f)?;
        Ok(())
    }

    /// Register a scalar function (e.g. the paper's `Nation(lat, lon)`).
    pub fn register_scalar(&mut self, f: ScalarFn) -> SqlResult<()> {
        self.scalars.register(f)
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

/// An immutable view of the catalog taken at statement start: `Arc`
/// clones of the registered tables plus shallow clones of the function
/// registries (both are maps of `Arc`'d implementations). Executing
/// against a snapshot means a statement sees one consistent catalog for
/// its whole lifetime, and concurrent registrations never invalidate an
/// in-flight plan.
#[derive(Clone)]
pub struct CatalogSnapshot {
    pub(crate) tables: HashMap<String, Arc<Table>>,
    pub(crate) versions: HashMap<String, u64>,
    pub(crate) aggs: Registry,
    pub(crate) scalars: ScalarRegistry,
}

impl CatalogSnapshot {
    /// A registered table, by case-insensitive name.
    pub fn table(&self, name: &str) -> SqlResult<Arc<Table>> {
        self.tables
            .get(&name.to_uppercase())
            .cloned()
            .ok_or_else(|| SqlError::Plan(format!("unknown table: {name}")))
    }

    /// The table's version at snapshot time (0 if the name is unknown).
    pub fn table_version(&self, name: &str) -> u64 {
        self.versions
            .get(&name.to_uppercase())
            .copied()
            .unwrap_or(0)
    }
}

/// The `Arc`-shared, lock-guarded catalog handed to every [`crate::Session`].
#[derive(Clone)]
pub struct SharedCatalog(Arc<RwLock<Catalog>>);

impl SharedCatalog {
    pub fn new() -> Self {
        SharedCatalog(Arc::new(RwLock::new(Catalog::new())))
    }

    /// Run `f` with the write lock held (registration path).
    pub fn with_write<T>(&self, f: impl FnOnce(&mut Catalog) -> T) -> T {
        let mut guard = self.0.write().unwrap_or_else(|p| p.into_inner());
        f(&mut guard)
    }

    /// Snapshot the catalog for one statement's execution. The read lock
    /// is held only for the duration of the map clones.
    pub fn snapshot(&self) -> CatalogSnapshot {
        let guard = self.0.read().unwrap_or_else(|p| p.into_inner());
        CatalogSnapshot {
            tables: guard.tables.clone(),
            versions: guard.versions.clone(),
            aggs: guard.aggs.clone(),
            scalars: guard.scalars.clone(),
        }
    }
}

impl Default for SharedCatalog {
    fn default() -> Self {
        SharedCatalog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relation::{row, DataType, Schema};

    fn small() -> Table {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        Table::new(schema, vec![row![1], row![2]]).unwrap()
    }

    #[test]
    fn snapshot_is_isolated_from_later_registration() {
        let shared = SharedCatalog::new();
        shared
            .with_write(|c| c.register_table("a", small()))
            .unwrap();
        let snap = shared.snapshot();
        shared
            .with_write(|c| c.register_table("b", small()))
            .unwrap();
        // The old snapshot does not see table B; a fresh one does.
        assert!(snap.table("b").is_err());
        assert!(shared.snapshot().table("b").is_ok());
        assert_eq!(snap.table("a").unwrap().len(), 2);
    }

    #[test]
    fn duplicate_table_registration_is_a_typed_error() {
        let shared = SharedCatalog::new();
        shared
            .with_write(|c| c.register_table("t", small()))
            .unwrap();
        let err = shared
            .with_write(|c| c.register_table("T", small()))
            .unwrap_err();
        assert!(matches!(err, SqlError::Plan(_)));
    }

    #[test]
    fn replace_if_version_detects_races() {
        let shared = SharedCatalog::new();
        shared
            .with_write(|c| c.register_table("t", small()))
            .unwrap();
        // Version 1 → CAS at 1 succeeds and returns 2.
        let v = shared
            .with_write(|c| c.replace_if_version("t", 1, small()))
            .unwrap();
        assert_eq!(v, Some(2));
        // A writer still holding the old version loses the race.
        let stale = shared
            .with_write(|c| c.replace_if_version("T", 1, small()))
            .unwrap();
        assert_eq!(stale, None);
        assert_eq!(shared.snapshot().table_version("t"), 2);
        // Unknown tables are a typed error, not a silent miss.
        assert!(shared
            .with_write(|c| c.replace_if_version("nope", 1, small()))
            .is_err());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let shared = SharedCatalog::new();
        let clone = shared.clone();
        // Poison the lock by panicking while holding it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            clone.with_write(|_| panic!("poison"));
        }));
        // The catalog is still usable.
        shared
            .with_write(|c| c.register_table("t", small()))
            .unwrap();
        assert!(shared.snapshot().table("t").is_ok());
    }
}
