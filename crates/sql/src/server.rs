//! A minimal TCP cube server: thread-per-connection over the [`crate::wire`]
//! protocol, with per-connection panic isolation.
//!
//! Every connection gets its own [`Session`] against the shared engine,
//! so one client's options, cancel token, and statistics never leak into
//! another's. Each request runs inside `exec::guard`, so a panicking UDA
//! or a poisoned lock produces one `ERR AGG_PANICKED` frame on one
//! connection — the process, and every other session, keeps serving.
//! Overload surfaces as `ERR RESOURCE_EXHAUSTED` frames with a
//! retry-after hint, from the admission controller (queries) or from the
//! connection cap (accepts); the server never falls over under load, it
//! sheds.

use crate::admission::{failpoint, AdmissionController};
use crate::catalog::SharedCatalog;
use crate::engine::Engine;
use crate::error::SqlError;
use crate::session::Session;
use crate::wire;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server-level limits, independent of per-query admission control.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneously open connections; further accepts are
    /// answered with one `ERR RESOURCE_EXHAUSTED` frame and closed.
    pub max_connections: usize,
    /// Largest request frame accepted, in bytes.
    pub max_frame_len: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_frame_len: wire::MAX_FRAME_LEN,
        }
    }
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] (tests) or [`ServerHandle::wait`] (the
/// `dc_serve` binary).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight connections, and join all threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = {
            let mut guard = self.workers.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Block until the accept loop exits (i.e. forever, absent shutdown
    /// or a listener error). For the foreground `dc_serve` binary.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Start serving `engine` on `addr` (e.g. `"127.0.0.1:0"`). Returns once
/// the listener is bound; connections are handled on background threads.
pub fn serve(engine: &Engine, addr: &str, cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let open = Arc::new(AtomicUsize::new(0));
    let (catalog, admission, cache) = engine.service_parts();

    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let workers = Arc::clone(&workers);
        std::thread::spawn(move || {
            accept_loop(
                listener, catalog, admission, cache, cfg, shutdown, workers, open,
            )
        })
    };

    Ok(ServerHandle {
        addr: local,
        shutdown,
        accept: Some(accept),
        workers,
    })
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    catalog: SharedCatalog,
    admission: Arc<AdmissionController>,
    cache: Arc<crate::cache::CubeCache>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    open: Arc<AtomicUsize>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break, // listener gone; nothing left to serve
        };
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection (or any racer) during shutdown
        }
        // Connection cap: shed with a typed frame instead of hanging.
        if open.load(Ordering::SeqCst) >= cfg.max_connections {
            reject_connection(stream, cfg.max_connections);
            continue;
        }
        open.fetch_add(1, Ordering::SeqCst);
        let session = Session::new(catalog.clone(), Arc::clone(&admission), Arc::clone(&cache));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let open = Arc::clone(&open);
            let max_frame_len = cfg.max_frame_len;
            std::thread::spawn(move || {
                handle_connection(stream, session, shutdown, max_frame_len);
                open.fetch_sub(1, Ordering::SeqCst);
            })
        };
        let mut guard = workers.lock().unwrap_or_else(|p| p.into_inner());
        // Reap finished workers so long-lived servers don't accumulate
        // handles; join on a finished thread is immediate.
        guard.retain(|h| !h.is_finished());
        guard.push(handle);
    }
}

/// Answer an over-cap connection with one typed error frame and close.
fn reject_connection(mut stream: TcpStream, cap: usize) {
    let stats = datacube::ExecStats {
        admission: datacube::AdmissionVerdict::Shed,
        retry_after_ms: 50,
        ..Default::default()
    };
    let err = SqlError::Cube(datacube::CubeError::ResourceExhausted {
        resource: datacube::Resource::AdmissionQueue,
        limit: cap as u64,
        observed: cap as u64 + 1,
        stats,
    });
    let _ = wire::write_frame(&mut stream, &wire::encode_error(&err));
    let _ = stream.flush();
}

/// Serve one connection: read request frames, answer each with exactly
/// one response frame, until the peer closes, an I/O error occurs, or
/// the server shuts down.
fn handle_connection(
    mut stream: TcpStream,
    session: Session,
    shutdown: Arc<AtomicBool>,
    max_frame_len: u32,
) {
    // Short read timeouts so blocked reads notice shutdown promptly.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        let mut keep_waiting = || !shutdown.load(Ordering::SeqCst);
        let frame = match wire::read_frame(&mut stream, max_frame_len, &mut keep_waiting) {
            Ok(Some(f)) => f,
            Ok(None) => break, // clean close
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized/corrupt frame: answer once, then close — we
                // cannot resynchronize the stream.
                let err = SqlError::Plan(format!("bad request frame: {e}"));
                let _ = wire::write_frame(&mut stream, &wire::encode_error(&err));
                break;
            }
            Err(_) => break, // timeout-at-shutdown or hard I/O error
        };
        let payload = respond(&session, &frame);
        if wire::write_frame(&mut stream, &payload).is_err() {
            break;
        }
    }
}

/// Execute one request and encode the response. Panic-isolated: a UDA
/// panic (or an injected `service::respond` fault) becomes a typed error
/// frame, never a dead process.
fn respond(session: &Session, frame: &[u8]) -> Vec<u8> {
    let sql = match std::str::from_utf8(frame) {
        Ok(s) => s,
        Err(e) => return wire::encode_error(&SqlError::Plan(format!("request is not UTF-8: {e}"))),
    };
    let guarded = datacube::exec::guard("service::respond", || {
        failpoint("service::respond").map_err(SqlError::Cube)?;
        session.execute(sql)
    });
    match guarded {
        Ok(Ok(table)) => wire::encode_table(&table),
        Ok(Err(e)) => wire::encode_error(&e),
        Err(cube_err) => wire::encode_error(&SqlError::Cube(cube_err)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Response;
    use dc_relation::{row, DataType, Schema, Table};

    fn demo_engine() -> Engine {
        let mut engine = Engine::new();
        let schema = Schema::from_pairs(&[("model", DataType::Str), ("units", DataType::Int)]);
        let t = Table::new(
            schema,
            vec![row!["Chevy", 50], row!["Ford", 60], row!["Chevy", 10]],
        )
        .unwrap();
        engine.register_table("Sales", t).unwrap();
        engine
    }

    #[test]
    fn serves_queries_and_typed_errors_over_tcp() {
        let engine = demo_engine();
        let handle = serve(&engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut conn = TcpStream::connect(handle.local_addr()).unwrap();

        let resp = wire::request(
            &mut conn,
            "SELECT model, SUM(units) AS total FROM Sales GROUP BY CUBE model",
        )
        .unwrap();
        match resp {
            Response::Table { columns, rows } => {
                assert_eq!(columns, vec!["model", "total"]);
                assert_eq!(rows.len(), 3); // Chevy, Ford, ALL
            }
            // cube-lint: allow(wildcard, scrutinee is Response, not Value)
            other => panic!("expected table, got {other:?}"),
        }

        // A parse error is a typed frame and the connection survives it.
        let resp = wire::request(&mut conn, "SELEKT nonsense").unwrap();
        assert!(
            matches!(resp, Response::Error { ref code, .. } if code == "PARSE" || code == "LEX"),
            "{resp:?}"
        );
        let resp = wire::request(&mut conn, "SELECT COUNT(*) AS n FROM Sales").unwrap();
        assert!(matches!(resp, Response::Table { .. }), "{resp:?}");

        handle.shutdown();
    }

    #[test]
    fn connection_cap_sheds_with_typed_frame() {
        let engine = demo_engine();
        let cfg = ServerConfig {
            max_connections: 1,
            ..Default::default()
        };
        let handle = serve(&engine, "127.0.0.1:0", cfg).unwrap();
        let mut first = TcpStream::connect(handle.local_addr()).unwrap();
        // Prove the first connection is live (and thus counted) before
        // the second connects.
        let resp = wire::request(&mut first, "SELECT COUNT(*) AS n FROM Sales").unwrap();
        assert!(matches!(resp, Response::Table { .. }));

        let mut second = TcpStream::connect(handle.local_addr()).unwrap();
        let payload = wire::read_frame(&mut second, wire::MAX_FRAME_LEN, &mut || true)
            .unwrap()
            .unwrap();
        match wire::decode_response(&payload).unwrap() {
            Response::Error {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, "RESOURCE_EXHAUSTED");
                assert!(retry_after_ms > 0);
            }
            // cube-lint: allow(wildcard, scrutinee is Response, not Value)
            other => panic!("expected shed frame, got {other:?}"),
        }
        handle.shutdown();
    }
}
