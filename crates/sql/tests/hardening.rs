//! Regression tests for the SQL layer's panic-isolation hardening.
//!
//! Each test pins one site that `cube_lint` flagged and the engine then
//! converted from a potential panic into a typed [`SqlError`]: malformed
//! SQL and misbehaving user-defined aggregates must surface as errors,
//! never tear down the process.

use dc_aggregate::{Accumulator, AggKind, AggregateFunction, Retract};
use dc_relation::{row, DataType, Schema, Table, Value};
use dc_sql::{Engine, SqlError};
use std::sync::Arc;

fn sales() -> Table {
    let schema = Schema::from_pairs(&[
        ("Model", DataType::Str),
        ("Year", DataType::Int),
        ("Sales", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for (m, y, u) in [
        ("Chevy", 1994i64, 50i64),
        ("Chevy", 1995, 85),
        ("Ford", 1994, 60),
    ] {
        t.push(row![m, y, u]).unwrap();
    }
    t
}

fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_table("Sales", sales()).unwrap();
    e.register_table(
        "Empty",
        Table::empty(Schema::from_pairs(&[
            ("Model", DataType::Str),
            ("Sales", DataType::Int),
        ])),
    )
    .unwrap();
    e
}

/// A user-defined aggregate that panics at a chosen lifecycle point.
struct Bomb {
    in_iter: bool,
}

struct BombAcc {
    in_iter: bool,
}

impl Accumulator for BombAcc {
    fn iter(&mut self, _v: &Value) {
        if self.in_iter {
            panic!("bomb in Iter");
        }
    }
    fn state(&self) -> Vec<Value> {
        Vec::new()
    }
    fn merge(&mut self, _state: &[Value]) {}
    fn final_value(&self) -> Value {
        if !self.in_iter {
            panic!("bomb in Final");
        }
        Value::Null
    }
    fn retract(&mut self, _v: &Value) -> Retract {
        Retract::Applied
    }
}

impl AggregateFunction for Bomb {
    fn name(&self) -> &str {
        if self.in_iter {
            "BOOM_ITER"
        } else {
            "BOOM_FINAL"
        }
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(BombAcc {
            in_iter: self.in_iter,
        })
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Int)
    }
}

/// engine.rs empty-input path: the one-row "empty-set aggregates" result
/// calls `init().final_value()` directly — a UDA panicking in Final must
/// come back as `CubeError::AggPanicked`, not a process abort.
#[test]
fn uda_panic_in_final_on_empty_table_is_an_error() {
    let mut e = engine();
    e.register_aggregate(Arc::new(Bomb { in_iter: false }))
        .unwrap();
    let err = e
        .execute("SELECT BOOM_FINAL(Sales) FROM Empty")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("BOOM_FINAL"), "unexpected error: {msg}");
    assert!(matches!(err, SqlError::Cube(_)), "unexpected error: {err}");
}

/// The core scan path: a UDA panicking in Iter during GROUP BY unwinds as
/// an error and the engine remains usable afterwards.
#[test]
fn uda_panic_in_iter_is_contained_and_engine_survives() {
    let mut e = engine();
    e.register_aggregate(Arc::new(Bomb { in_iter: true }))
        .unwrap();
    let err = e
        .execute("SELECT Model, BOOM_ITER(Sales) FROM Sales GROUP BY Model")
        .unwrap_err();
    assert!(err.to_string().contains("BOOM_ITER"), "got: {err}");

    // The engine (and its options mutex) survived the unwind.
    e.set_option("MAX_CELLS", 1_000_000).unwrap();
    let t = e
        .execute("SELECT Model, SUM(Sales) FROM Sales GROUP BY Model")
        .unwrap();
    assert_eq!(t.len(), 2);
}

/// Materialize path: a UDA panicking in Final after a successful scan is
/// still converted, exercising the guard in cell emission.
#[test]
fn uda_panic_in_final_during_group_by_is_an_error() {
    let mut e = engine();
    e.register_aggregate(Arc::new(Bomb { in_iter: false }))
        .unwrap();
    let err = e
        .execute("SELECT Model, BOOM_FINAL(Sales) FROM Sales GROUP BY Model")
        .unwrap_err();
    assert!(err.to_string().contains("BOOM_FINAL"), "got: {err}");
}

/// Parameterized aggregates validate their configuration argument instead
/// of unwrapping it.
#[test]
fn malformed_parameterized_aggregates_error_cleanly() {
    let e = engine();
    for sql in [
        "SELECT MAXN(Sales) FROM Sales",              // missing n
        "SELECT MAXN(Sales, 0) FROM Sales",           // n < 1
        "SELECT MAXN(Sales, Model) FROM Sales",       // non-literal
        "SELECT PERCENTILE(Sales, 2.0) FROM Sales",   // p out of range
        "SELECT PERCENTILE(Sales, Model) FROM Sales", // non-literal
        "SELECT N_TILE(Sales, 0) OVER () FROM Sales", // bad quantile arg
    ] {
        match e.execute(sql) {
            Err(_) => {}
            Ok(_) => panic!("expected an error for: {sql}"),
        }
    }
}

/// GROUPING SETS over unknown names is a plan error, not a panic.
#[test]
fn grouping_sets_with_unknown_column_errors() {
    let e = engine();
    let err = e
        .execute("SELECT Model, SUM(Sales) FROM Sales GROUP BY GROUPING SETS ((Model), (Bogus))")
        .unwrap_err();
    assert!(err.to_string().contains("Bogus"), "got: {err}");
}

/// SET validates its option name and value range without unwrapping.
#[test]
fn set_option_rejects_bad_input() {
    let e = engine();
    assert!(e.set_option("NOT_AN_OPTION", 1).is_err());
    assert!(e.set_option("MAX_CELLS", -1).is_err());
    assert!(e.execute("SET NO_SUCH_KNOB = 3").is_err());
}
