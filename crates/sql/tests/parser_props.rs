//! Parser property tests: the canonical text of any expression reparses
//! to an equivalent expression (a render/parse fixpoint), and random
//! garbage never panics the parser.

use dc_relation::Value;
use dc_sql::ast::{BinOp, Expr, Statement};
use dc_sql::parser::parse;
use proptest::prelude::*;

/// Random well-formed expressions over a small vocabulary.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        "[a-c]".prop_map(|s| Expr::Column {
            qualifier: None,
            name: s
        }),
        (0i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
        (1i64..100).prop_map(|i| Expr::Literal(Value::Float(i as f64 + 0.5))),
        "[a-z]{0,5}".prop_map(|s| Expr::Literal(Value::str(s))),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::Literal(Value::Bool(true))),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| {
                Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }
            }),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n,
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n,
                }
            ),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n,
                }),
            (
                prop_oneof![Just("SUM"), Just("AVG"), Just("MYFN")],
                inner.clone()
            )
                .prop_map(|(name, arg)| Expr::Func {
                    name: name.to_string(),
                    distinct: false,
                    args: vec![arg],
                }),
            inner.prop_map(|e| Expr::Grouping(Box::new(e))),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::And),
        Just(BinOp::Eq),
        Just(BinOp::Neq),
        Just(BinOp::Lt),
        Just(BinOp::Lte),
        Just(BinOp::Gt),
        Just(BinOp::Gte),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// canonical(parse(canonical(e))) == canonical(e): rendering is a
    /// fixpoint, so canonical text is a faithful expression identity —
    /// which the engine's substitution maps depend on.
    #[test]
    fn canonical_reparse_fixpoint(e in arb_expr()) {
        let text = e.canonical();
        let sql = format!("SELECT {text} FROM t");
        let parsed = parse(&sql);
        prop_assert!(parsed.is_ok(), "canonical text failed to parse: {text}\n{parsed:?}");
        let Ok(Statement::Select(stmt)) = parsed else { unreachable!() };
        prop_assert_eq!(stmt.items.len(), 1);
        let reparsed = stmt.items[0].expr.canonical();
        prop_assert_eq!(reparsed, text);
    }

    /// The lexer+parser never panic on arbitrary input; they return
    /// errors.
    #[test]
    fn parser_never_panics(garbage in "[ -~]{0,80}") {
        let _ = parse(&garbage);
        let _ = parse(&format!("SELECT {garbage} FROM t"));
    }

    /// Keyword case and surrounding whitespace never change the parse.
    #[test]
    fn whitespace_and_case_insensitive(extra_ws in "[ \t\n]{0,5}") {
        let a = parse(&format!("SELECT a,{extra_ws}SUM(b) FROM t GROUP BY CUBE a")).unwrap();
        let b = parse("select a, sum(b) from t group by cube a").unwrap();
        let (Statement::Select(sa), Statement::Select(sb)) = (a, b) else {
            unreachable!("plain SELECTs parse as Select")
        };
        prop_assert_eq!(sa.items.len(), sb.items.len());
        prop_assert_eq!(
            sa.items[1].expr.canonical(),
            sb.items[1].expr.canonical()
        );
    }
}
