//! End-to-end SQL tests over the paper's running examples.

use dc_relation::{row, DataType, Date, Row, Schema, Table, Value};
use dc_sql::scalar::ScalarFn;
use dc_sql::{Engine, SqlError};

/// The Table 4/5/6 sales data: Chevy & Ford × 1994/1995 × black/white.
fn sales() -> Table {
    let schema = Schema::from_pairs(&[
        ("Model", DataType::Str),
        ("Year", DataType::Int),
        ("Color", DataType::Str),
        ("Sales", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for (m, y, c, u) in [
        ("Chevy", 1994, "black", 50),
        ("Chevy", 1994, "white", 40),
        ("Chevy", 1995, "black", 85),
        ("Chevy", 1995, "white", 115),
        ("Ford", 1994, "black", 50),
        ("Ford", 1994, "white", 10),
        ("Ford", 1995, "black", 85),
        ("Ford", 1995, "white", 75),
    ] {
        t.push(row![m, y, c, u]).unwrap();
    }
    t
}

fn weather() -> Table {
    let schema = Schema::from_pairs(&[
        ("Time", DataType::Date),
        ("Latitude", DataType::Float),
        ("Longitude", DataType::Float),
        ("Altitude", DataType::Int),
        ("Temp", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for (time, lat, lon, alt, temp) in [
        (
            Date::new_at(1995, 1, 25, 15, 0).unwrap(),
            37.97,
            -122.75,
            102,
            28,
        ),
        (
            Date::new_at(1995, 1, 25, 18, 0).unwrap(),
            19.43,
            -99.13,
            2240,
            41,
        ),
        (
            Date::new_at(1995, 1, 26, 15, 0).unwrap(),
            37.97,
            -122.75,
            102,
            37,
        ),
        (
            Date::new_at(1995, 1, 26, 18, 0).unwrap(),
            35.68,
            139.69,
            40,
            48,
        ),
    ] {
        t.push(Row::new(vec![
            Value::Date(time),
            Value::Float(lat),
            Value::Float(lon),
            Value::Int(alt),
            Value::Int(temp),
        ]))
        .unwrap();
    }
    t
}

fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_table("Sales", sales()).unwrap();
    e.register_table("Weather", weather()).unwrap();
    // The paper's Nation() function, §2.
    e.register_scalar(ScalarFn::new("NATION", 2, DataType::Str, |args| {
        match (args[0].as_f64(), args[1].as_f64()) {
            (Some(lat), Some(lon)) if lat > 30.0 && lon < -100.0 => Value::str("USA"),
            (Some(lat), Some(lon)) if lat < 30.0 && lon < -90.0 => Value::str("Mexico"),
            (Some(_), Some(lon)) if lon > 100.0 => Value::str("Japan"),
            _ => Value::Null,
        }
    }))
    .unwrap();
    e
}

fn col(t: &Table, name: &str) -> usize {
    t.schema().index_of(name).unwrap()
}

#[test]
fn simple_aggregate_without_group_by() {
    let out = engine().execute("SELECT AVG(Temp) FROM Weather").unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][0], Value::Float(38.5));
}

#[test]
fn count_distinct_reporting_times() {
    // §1.1: "counts the distinct number of reporting times".
    let out = engine()
        .execute("SELECT COUNT(DISTINCT Time) FROM Weather")
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Int(4));
}

#[test]
fn group_by_time_altitude() {
    let out = engine()
        .execute("SELECT Time, Altitude, AVG(Temp) FROM Weather GROUP BY Time, Altitude")
        .unwrap();
    assert_eq!(out.len(), 4);
}

#[test]
fn histogram_group_by_computed_day_and_nation() {
    // §2's histogram query: GROUP BY Day(Time), Nation(Latitude, Longitude).
    let out = engine()
        .execute(
            "SELECT day, nation, MAX(Temp)
             FROM Weather
             GROUP BY Day(Time) AS day, Nation(Latitude, Longitude) AS nation",
        )
        .unwrap();
    // (25th, USA), (25th, Mexico), (26th, USA), (26th, Japan).
    assert_eq!(out.len(), 4);
    let usa_25 = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::Date(Date::ymd(1995, 1, 25)) && r[1] == Value::str("USA"))
        .unwrap();
    assert_eq!(usa_25[2], Value::Int(28));
}

#[test]
fn full_cube_matches_figure_4_arithmetic() {
    let out = engine()
        .execute(
            "SELECT Model, Year, Color, SUM(Sales) AS units
             FROM Sales GROUP BY CUBE Model, Year, Color",
        )
        .unwrap();
    // 2×2×2 core + supers: Π(C_i + 1) = 3 × 3 × 3 = 27 (dense core).
    assert_eq!(out.len(), 27);
    let grand = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::All && r[1] == Value::All && r[2] == Value::All)
        .unwrap();
    assert_eq!(grand[3], Value::Int(510));
}

#[test]
fn rollup_produces_table_5a() {
    let out = engine()
        .execute(
            "SELECT Model, Year, Color, SUM(Sales) AS Units
             FROM Sales WHERE Model = 'Chevy'
             GROUP BY ROLLUP Model, Year, Color",
        )
        .unwrap();
    // Table 5.a: 4 core + 2 (model,year) + 1 (model) + 1 grand = 8 rows.
    assert_eq!(out.len(), 8);
    let m = col(&out, "Model");
    let y = col(&out, "Year");
    let c = col(&out, "Color");
    let u = col(&out, "Units");
    let find = |mv: Value, yv: Value, cv: Value| {
        out.rows()
            .iter()
            .find(|r| r[m] == mv && r[y] == yv && r[c] == cv)
            .map(|r| r[u].clone())
    };
    assert_eq!(
        find(Value::str("Chevy"), Value::Int(1994), Value::All),
        Some(Value::Int(90))
    );
    assert_eq!(
        find(Value::str("Chevy"), Value::Int(1995), Value::All),
        Some(Value::Int(200))
    );
    assert_eq!(
        find(Value::str("Chevy"), Value::All, Value::All),
        Some(Value::Int(290))
    );
}

#[test]
fn union_of_group_bys_equals_rollup() {
    // §2's hand-written 4-way union vs the ROLLUP operator.
    let e = engine();
    let union = e
        .execute(
            "SELECT 'ALL', 'ALL', 'ALL', SUM(Sales) FROM Sales WHERE Model = 'Chevy'
             UNION
             SELECT Model, 'ALL', 'ALL', SUM(Sales) FROM Sales WHERE Model = 'Chevy'
                 GROUP BY Model
             UNION
             SELECT Model, STR(Year), 'ALL', SUM(Sales) FROM Sales WHERE Model = 'Chevy'
                 GROUP BY Model, Year
             UNION
             SELECT Model, STR(Year), Color, SUM(Sales) FROM Sales WHERE Model = 'Chevy'
                 GROUP BY Model, Year, Color",
        )
        .unwrap();
    assert_eq!(union.len(), 8); // same 8 logical rows as Table 5.a
                                // Sub-total values agree with the rollup (the 'ALL' strings here are
                                // the paper's *display* convention; the rollup uses the ALL token).
    let total: Vec<&Row> = union
        .rows()
        .iter()
        .filter(|r| r[0] == Value::str("ALL"))
        .collect();
    assert_eq!(total.len(), 1);
    assert_eq!(total[0][3], Value::Int(290));
}

#[test]
fn grouping_sets_explicit_family() {
    let out = engine()
        .execute(
            "SELECT Model, Year, SUM(Sales) AS s FROM Sales
             GROUP BY GROUPING SETS ((Model), (Year), ())",
        )
        .unwrap();
    // 2 model rows + 2 year rows + 1 grand total.
    assert_eq!(out.len(), 5);
}

#[test]
fn compound_group_by_rollup_cube() {
    // Figure 5's shape on the sales data.
    let out = engine()
        .execute(
            "SELECT Model, Year, Color, SUM(Sales) AS s FROM Sales
             GROUP BY Model ROLLUP Year CUBE Color",
        )
        .unwrap();
    // Sets: {M,Y,C}=8, {M,Y}=4, {M,C}=4, {M}=2 → 18 rows.
    assert_eq!(out.len(), 18);
    // Model is never ALL (it is in the plain GROUP BY block).
    let m = col(&out, "Model");
    assert!(out.rows().iter().all(|r| r[m] != Value::All));
}

#[test]
fn grouping_function_discriminates() {
    // §3.4's minimalist encoding through SQL.
    let out = engine()
        .execute(
            "SELECT Model, SUM(Sales) AS s, GROUPING(Model) AS g
             FROM Sales GROUP BY CUBE Model",
        )
        .unwrap();
    for r in out.rows() {
        assert_eq!(r[2], Value::Bool(r[0].is_all()));
    }
}

#[test]
fn having_filters_super_aggregates() {
    let out = engine()
        .execute(
            "SELECT Model, SUM(Sales) AS s FROM Sales
             GROUP BY CUBE Model HAVING SUM(Sales) > 250",
        )
        .unwrap();
    // Chevy (290) and the grand total (510); Ford (220) filtered out.
    assert_eq!(out.len(), 2);
}

#[test]
fn percent_of_total_with_scalar_subquery() {
    // §4's percent-of-total query.
    let out = engine()
        .execute(
            "SELECT Model, Year, Color, SUM(Sales),
                    SUM(Sales) / (SELECT SUM(Sales) FROM Sales
                                  WHERE Model IN ('Ford', 'Chevy')
                                    AND Year BETWEEN 1990 AND 1995)
             FROM Sales
             WHERE Model IN ('Ford', 'Chevy') AND Year BETWEEN 1990 AND 1995
             GROUP BY CUBE Model, Year, Color",
        )
        .unwrap();
    let grand = out
        .rows()
        .iter()
        .find(|r| (0..3).all(|d| r[d] == Value::All))
        .unwrap();
    assert_eq!(grand[4], Value::Float(1.0)); // 510 / 510
}

#[test]
fn order_by_and_limit() {
    let out = engine()
        .execute(
            "SELECT Model, SUM(Sales) AS total FROM Sales
             GROUP BY Model ORDER BY total DESC LIMIT 1",
        )
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0], row!["Chevy", 290]);
}

#[test]
fn order_by_ordinal() {
    let out = engine()
        .execute("SELECT Model, SUM(Sales) FROM Sales GROUP BY Model ORDER BY 2 ASC")
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::str("Ford"));
}

#[test]
fn decoration_functionally_dependent() {
    // §3.5: decorate with a column not in the GROUP BY. Build a table
    // where nation → continent.
    let mut e = Engine::new();
    let schema = Schema::from_pairs(&[
        ("nation", DataType::Str),
        ("continent", DataType::Str),
        ("temp", DataType::Int),
    ]);
    let t = Table::new(
        schema,
        vec![
            row!["USA", "North America", 28],
            row!["USA", "North America", 37],
            row!["Mexico", "North America", 41],
            row!["Japan", "Asia", 48],
        ],
    )
    .unwrap();
    e.register_table("obs", t).unwrap();
    let out = e
        .execute("SELECT nation, continent, MAX(temp) FROM obs GROUP BY CUBE nation")
        .unwrap();
    let n = col(&out, "nation");
    let c = col(&out, "continent");
    for r in out.rows() {
        if r[n].is_all() {
            // Table 7: continent is NULL when nation is aggregated away.
            assert_eq!(r[c], Value::Null);
        } else {
            assert_ne!(r[c], Value::Null);
        }
    }
}

#[test]
fn decoration_requires_fd() {
    let mut e = Engine::new();
    let schema = Schema::from_pairs(&[
        ("a", DataType::Str),
        ("b", DataType::Str),
        ("x", DataType::Int),
    ]);
    let t = Table::new(schema, vec![row!["k", "one", 1], row!["k", "two", 2]]).unwrap();
    e.register_table("t", t).unwrap();
    let err = e
        .execute("SELECT a, b, SUM(x) FROM t GROUP BY a")
        .unwrap_err();
    assert!(matches!(err, SqlError::Plan(_)), "{err}");
}

#[test]
fn join_using_star_query() {
    // A small star query (§3.6): fact JOIN dimension USING (key).
    let mut e = Engine::new();
    let fact = Table::new(
        Schema::from_pairs(&[("office_id", DataType::Int), ("amount", DataType::Int)]),
        vec![row![1, 100], row![1, 50], row![2, 70]],
    )
    .unwrap();
    let dim = Table::new(
        Schema::from_pairs(&[("office_id", DataType::Int), ("region", DataType::Str)]),
        vec![row![1, "Western"], row![2, "Eastern"]],
    )
    .unwrap();
    e.register_table("fact", fact).unwrap();
    e.register_table("office", dim).unwrap();
    let out = e
        .execute(
            "SELECT region, SUM(amount) AS total
             FROM fact JOIN office USING (office_id)
             GROUP BY ROLLUP region",
        )
        .unwrap();
    assert_eq!(out.len(), 3);
    let grand = out.rows().iter().find(|r| r[0] == Value::All).unwrap();
    assert_eq!(grand[1], Value::Int(220));
}

#[test]
fn aggregate_over_computed_expression() {
    let out = engine()
        .execute("SELECT Model, SUM(Sales * 2) AS dbl FROM Sales GROUP BY Model")
        .unwrap();
    let chevy = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("Chevy"))
        .unwrap();
    assert_eq!(chevy[1], Value::Int(580));
}

#[test]
fn arithmetic_over_aggregates() {
    let out = engine()
        .execute(
            "SELECT Model, SUM(Sales) / COUNT(*) AS mean, AVG(Sales) AS avg
             FROM Sales GROUP BY Model",
        )
        .unwrap();
    for r in out.rows() {
        assert_eq!(r[1], r[2], "SUM/COUNT must equal AVG for {}", r[0]);
    }
}

#[test]
fn where_three_valued_logic_excludes_unknown() {
    let mut e = Engine::new();
    let schema = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]);
    let t = Table::new(
        schema,
        vec![
            row![1, 10],
            Row::new(vec![Value::Null, Value::Int(20)]),
            row![3, 30],
        ],
    )
    .unwrap();
    e.register_table("t", t).unwrap();
    // The NULL x row is neither > 1 nor NOT > 1: excluded both ways.
    let gt = e.execute("SELECT SUM(y) FROM t WHERE x > 1").unwrap();
    assert_eq!(gt.rows()[0][0], Value::Int(30));
    let not_gt = e.execute("SELECT SUM(y) FROM t WHERE NOT (x > 1)").unwrap();
    assert_eq!(not_gt.rows()[0][0], Value::Int(10));
}

#[test]
fn global_aggregate_over_empty_input() {
    let mut e = Engine::new();
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    e.register_table("t", Table::empty(schema)).unwrap();
    let out = e.execute("SELECT COUNT(*), SUM(x) FROM t").unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][0], Value::Int(0));
    assert_eq!(out.rows()[0][1], Value::Null);
}

#[test]
fn error_unknown_table_column_function() {
    let e = engine();
    assert!(matches!(
        e.execute("SELECT x FROM nope"),
        Err(SqlError::Plan(_))
    ));
    assert!(e.execute("SELECT nope FROM Sales").is_err());
    assert!(e.execute("SELECT NOPE(Sales) FROM Sales").is_err());
    assert!(e.execute("SELECT SUM(Sales) FROM Sales GROUP BY").is_err());
}

#[test]
fn error_distinct_on_non_count() {
    let err = engine()
        .execute("SELECT SUM(DISTINCT Sales) FROM Sales")
        .unwrap_err();
    assert!(matches!(err, SqlError::Plan(_)));
}

#[test]
fn select_star_passthrough() {
    let out = engine()
        .execute("SELECT * FROM Sales WHERE Year = 1995")
        .unwrap();
    assert_eq!(out.len(), 4);
    assert_eq!(out.schema().len(), 4);
}

#[test]
fn union_all_keeps_duplicates() {
    let e = engine();
    let out = e
        .execute(
            "SELECT Model FROM Sales WHERE Year = 1994
             UNION ALL SELECT Model FROM Sales WHERE Year = 1995",
        )
        .unwrap();
    assert_eq!(out.len(), 8);
    let distinct = e
        .execute(
            "SELECT Model FROM Sales WHERE Year = 1994
             UNION SELECT Model FROM Sales WHERE Year = 1995",
        )
        .unwrap();
    assert_eq!(distinct.len(), 2);
}

#[test]
fn registered_uda_usable_from_sql() {
    use dc_aggregate::{AggKind, UdaBuilder};
    let mut e = engine();
    let range = UdaBuilder::new("RANGE", AggKind::Algebraic, || (None::<f64>, None::<f64>))
        .iter(|s, v| {
            if let Some(x) = v.as_f64() {
                s.0 = Some(s.0.map_or(x, |m: f64| m.min(x)));
                s.1 = Some(s.1.map_or(x, |m: f64| m.max(x)));
            }
        })
        .state(|s| {
            vec![
                s.0.map_or(Value::Null, Value::Float),
                s.1.map_or(Value::Null, Value::Float),
            ]
        })
        .merge(|s, st| {
            if let Some(x) = st[0].as_f64() {
                s.0 = Some(s.0.map_or(x, |m: f64| m.min(x)));
            }
            if let Some(x) = st[1].as_f64() {
                s.1 = Some(s.1.map_or(x, |m: f64| m.max(x)));
            }
        })
        .finalize(|s| match (s.0, s.1) {
            (Some(lo), Some(hi)) => Value::Float(hi - lo),
            _ => Value::Null,
        })
        .build()
        .unwrap();
    e.register_aggregate(range).unwrap();
    let out = e
        .execute("SELECT Model, RANGE(Sales) AS spread FROM Sales GROUP BY CUBE Model")
        .unwrap();
    let grand = out.rows().iter().find(|r| r[0] == Value::All).unwrap();
    assert_eq!(grand[1], Value::Float(105.0)); // 115 - 10
}

#[test]
fn explain_describes_the_plan() {
    let out = engine()
        .execute(
            "EXPLAIN SELECT Model, MEDIAN(Sales), SUM(Sales) FROM Sales
             GROUP BY Model ROLLUP Year CUBE Color
             HAVING SUM(Sales) > 10 ORDER BY 1 LIMIT 5",
        )
        .unwrap();
    let text: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
    let plan = text.join("\n");
    assert!(plan.contains("scan: Sales"), "{plan}");
    assert!(
        plan.contains("GROUP BY 1 dim(s), ROLLUP 1, CUBE 1"),
        "{plan}"
    );
    assert!(plan.contains("grouping sets: 4"), "{plan}");
    assert!(plan.contains("MEDIAN(Sales) [Holistic]"), "{plan}");
    assert!(plan.contains("SUM(Sales) [Distributive]"), "{plan}");
    // A holistic aggregate forces the 2^N route (§5).
    assert!(plan.contains("algorithm: 2^N"), "{plan}");
    assert!(plan.contains("HAVING"), "{plan}");
    assert!(plan.contains("sort: ORDER BY 1 key(s)"), "{plan}");
    assert!(plan.contains("limit: 5"), "{plan}");
    // Nothing was executed: EXPLAIN of a query on a bad column still
    // parses but fails at describe time only if the aggregate is unknown.
    let err = engine().execute("EXPLAIN SELECT NOPEFN(Sales) FROM Sales GROUP BY Model");
    assert!(
        err.is_ok(),
        "scalar calls are not described, only aggregates"
    );
}

#[test]
fn explain_without_holistic_uses_cascade() {
    let out = engine()
        .execute("EXPLAIN SELECT Model, SUM(Sales) FROM Sales GROUP BY CUBE Model, Year")
        .unwrap();
    let plan: String = out.rows().iter().map(|r| r[0].to_string() + "\n").collect();
    assert!(plan.contains("from-core cascade"), "{plan}");
    assert!(plan.contains("grouping sets: 4"), "{plan}");
}

#[test]
fn ordered_aggregates_over_base_rows() {
    // §1.2's Red Brick functions on a plain selection.
    let out = engine()
        .execute("SELECT Model, Sales, RANK(Sales), RATIO_TO_TOTAL(Sales) FROM Sales")
        .unwrap();
    // Ranks: 10 is rank 1; 115 is rank 8.
    let lowest = out.rows().iter().find(|r| r[1] == Value::Int(10)).unwrap();
    assert_eq!(lowest[2], Value::Int(1));
    let highest = out.rows().iter().find(|r| r[1] == Value::Int(115)).unwrap();
    assert_eq!(highest[2], Value::Int(8));
    // Ratios sum to 1.
    let total: f64 = out.rows().iter().map(|r| r[3].as_f64().unwrap()).sum();
    assert!((total - 1.0).abs() < 1e-12);
}

#[test]
fn n_tile_middle_decile_query() {
    // The paper's §1.2 example: min/max of the middle 10% via N_tile.
    let out = engine()
        .execute("SELECT Sales, N_TILE(Sales, 4) AS quartile FROM Sales")
        .unwrap();
    // 8 values into 4 tiles of ~2; the tied 85s share tile 3, so the
    // populations are 2/2/3/1 (ties never straddle a boundary).
    let counts: Vec<usize> = (1..=4i64)
        .map(|q| out.rows().iter().filter(|r| r[1] == Value::Int(q)).count())
        .collect();
    assert_eq!(counts, vec![2, 2, 3, 1]);
    // Tiles are monotone in the value.
    let mut pairs: Vec<(i64, i64)> = out
        .rows()
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    pairs.sort();
    for w in pairs.windows(2) {
        assert!(w[0].1 <= w[1].1);
    }
}

#[test]
fn cumulative_over_rollup_output() {
    // §3: "Cumulative aggregates ... work especially well with ROLLUP
    // because the answer set is naturally sequential."
    let out = engine()
        .execute(
            "SELECT Model, SUM(Sales) AS s, CUMULATIVE(SUM(Sales)) AS running
             FROM Sales GROUP BY Model",
        )
        .unwrap();
    // Canonical order: Chevy (290) then Ford (220); running 290, 510.
    assert_eq!(out.rows()[0][2], Value::Float(290.0));
    assert_eq!(out.rows()[1][2], Value::Float(510.0));
}

#[test]
fn running_sum_requires_literal_n() {
    let err = engine()
        .execute("SELECT RUNNING_SUM(Sales, Sales) FROM Sales")
        .unwrap_err();
    assert!(matches!(err, SqlError::Plan(_)));
    let ok = engine()
        .execute("SELECT RUNNING_SUM(Sales, 2) FROM Sales")
        .unwrap();
    assert_eq!(ok.rows()[0][0], Value::Null); // first n-1 values are NULL
    assert_eq!(ok.rows()[1][0], Value::Float(90.0));
}

#[test]
fn parameterized_aggregates_maxn_percentile() {
    // §5 lists MaxN/MinN among the algebraic functions; PERCENTILE is the
    // holistic rank question of §1.2.
    let out = engine()
        .execute(
            "SELECT Model, MAXN(Sales, 2) AS second_best, MINN(Sales, 1) AS worst,
                    PERCENTILE(Sales, 0.5) AS median_ish
             FROM Sales GROUP BY CUBE Model",
        )
        .unwrap();
    let chevy = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("Chevy"))
        .unwrap();
    // Chevy sales 50,40,85,115: 2nd largest 85, smallest 40.
    assert_eq!(chevy[1], Value::Int(85));
    assert_eq!(chevy[2], Value::Int(40));
    let grand = out.rows().iter().find(|r| r[0].is_all()).unwrap();
    assert_eq!(grand[1], Value::Int(85)); // 2nd largest overall
                                          // Nearest-rank median of 8 values.
    assert_eq!(grand[3], Value::Int(50));
    // Parameter must be a literal.
    assert!(engine()
        .execute("SELECT MAXN(Sales, Sales) FROM Sales")
        .is_err());
    assert!(engine()
        .execute("SELECT PERCENTILE(Sales, 1.5) FROM Sales")
        .is_err());
}

#[test]
fn median_is_usable_but_holistic() {
    let out = engine()
        .execute("SELECT Model, MEDIAN(Sales) FROM Sales GROUP BY CUBE Model")
        .unwrap();
    let grand = out.rows().iter().find(|r| r[0] == Value::All).unwrap();
    assert_eq!(grand[1], Value::Float(62.5)); // between 50 and 75
}

// ---- execution governance (SET) and degenerate inputs ------------------

#[test]
fn set_budget_trips_and_reset_restores() {
    let e = engine();
    // Tiny cell budget: the 3×3×3-cell cube cannot fit in 2.
    let ack = e.execute("SET MAX_CELLS = 2").unwrap();
    assert_eq!(ack.rows()[0][0], Value::str("MAX_CELLS"));
    assert_eq!(ack.rows()[0][1], Value::Int(2));
    let err = e
        .execute("SELECT Model, SUM(Sales) FROM Sales GROUP BY CUBE Model, Year")
        .unwrap_err();
    assert!(
        matches!(&err, SqlError::Cube(c) if c.to_string().contains("resource budget")),
        "expected a resource error, got {err:?}"
    );
    // 0 resets to unlimited; the same query then succeeds.
    e.execute("SET MAX_CELLS = 0").unwrap();
    let out = e
        .execute("SELECT Model, SUM(Sales) FROM Sales GROUP BY CUBE Model, Year")
        .unwrap();
    assert_eq!(out.len(), 3 * 3);
}

#[test]
fn set_threads_routes_through_parallel() {
    let e = engine();
    e.execute("SET THREADS = 4").unwrap();
    let out = e
        .execute("SELECT Model, SUM(Sales) FROM Sales GROUP BY CUBE Model")
        .unwrap();
    let grand = out.rows().iter().find(|r| r[0] == Value::All).unwrap();
    assert_eq!(grand[1], Value::Int(510));
    // A holistic aggregate survives the parallel coalesce too.
    let med = e
        .execute("SELECT Model, MEDIAN(Sales) FROM Sales GROUP BY CUBE Model")
        .unwrap();
    let grand = med.rows().iter().find(|r| r[0] == Value::All).unwrap();
    assert_eq!(grand[1], Value::Float(62.5));
}

#[test]
fn set_rejects_unknown_or_negative_options() {
    let e = engine();
    assert!(matches!(
        e.execute("SET NO_SUCH_OPTION = 1"),
        Err(SqlError::Plan(_))
    ));
    assert!(matches!(
        e.execute("SET MAX_CELLS = -1"),
        Err(SqlError::Plan(_))
    ));
    // Malformed SET: missing value.
    assert!(matches!(
        e.execute("SET MAX_CELLS ="),
        Err(SqlError::Parse { .. })
    ));
}

#[test]
fn cube_over_empty_table_is_empty() {
    let mut e = engine();
    let empty = Table::empty(sales().schema().clone());
    e.register_table("NoSales", empty).unwrap();
    let out = e
        .execute("SELECT Model, Year, SUM(Sales) FROM NoSales GROUP BY CUBE Model, Year")
        .unwrap();
    assert!(out.is_empty());
    // The global aggregate still returns the SQL empty-set row.
    let g = e
        .execute("SELECT COUNT(Sales), SUM(Sales) FROM NoSales")
        .unwrap();
    assert_eq!(g.rows()[0][0], Value::Int(0));
    assert_eq!(g.rows()[0][1], Value::Null);
}

#[test]
fn all_null_dimension_groups_as_one_value() {
    let mut e = engine();
    let schema = Schema::from_pairs(&[("Region", DataType::Str), ("Units", DataType::Int)]);
    let mut t = Table::empty(schema);
    for u in [10, 20, 30] {
        t.push(Row::new(vec![Value::Null, Value::Int(u)])).unwrap();
    }
    e.register_table("NullRegions", t).unwrap();
    let out = e
        .execute("SELECT Region, SUM(Units) FROM NullRegions GROUP BY CUBE Region")
        .unwrap();
    // One NULL group plus the ALL row, both totalling 60 — NULL is "an
    // ordinary grouping value" distinct from ALL (§3.4).
    assert_eq!(out.len(), 2);
    let null_row = out.rows().iter().find(|r| r[0] == Value::Null).unwrap();
    let all_row = out.rows().iter().find(|r| r[0] == Value::All).unwrap();
    assert_eq!(null_row[1], Value::Int(60));
    assert_eq!(all_row[1], Value::Int(60));
}

#[test]
fn set_timeout_expires_long_query() {
    let e = engine();
    // A zero-width window: any aggregation trips the deadline at its
    // first checkpoint. (TIMEOUT_MS = 0 means "no timeout", so use 1ms
    // and an engine-side sleep via a big cross join... keep it simple:
    // rely on the first checkpoint happening after >1ms of planning.)
    e.execute("SET TIMEOUT_MS = 1").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(5));
    // The deadline is measured from query start, not SET time, so a small
    // query still completes; just assert it doesn't wedge or abort.
    let _ = e.execute("SELECT Model, SUM(Sales) FROM Sales GROUP BY CUBE Model");
    e.execute("SET TIMEOUT_MS = 0").unwrap();
    let out = e
        .execute("SELECT Model, SUM(Sales) FROM Sales GROUP BY CUBE Model")
        .unwrap();
    assert_eq!(out.len(), 3);
}
