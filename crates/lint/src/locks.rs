//! Lock-acquisition model for R6/R7: which locks each function takes,
//! over which token spans the guards are held, and what runs under them.
//!
//! Like the rest of `cube_lint` this is a *lexical* model, not a type
//! checker. It recognises the engine's concrete locking idioms:
//!
//! * zero-argument `.read()` / `.write()` / `.lock()` calls are lock
//!   acquisitions, classified by receiver field name (`gate`, `shards`,
//!   `meta`, `entries`, …) into a [`LockKind`];
//! * a guard bound by `let` (or assigned to a variable pre-declared with
//!   a bare `let g;`) is held to the end of the binding's block, or to an
//!   explicit `drop(g)`; an unbound guard is held to the end of its
//!   statement;
//! * `catalog.with_write(|c| …)` runs its closure under the catalog
//!   write lock, so the argument span counts as a held region;
//! * shard acquisitions record their index expression so R6 can decide
//!   whether a multi-shard acquisition is provably ascending.
//!
//! The per-function [`FnSummary`] this module produces is the input to
//! [`crate::callgraph`], which propagates acquisitions through direct
//! calls and reports R6/R7 findings.

use crate::lexer::{Tok, TokKind};
use std::fmt;
use std::path::{Path, PathBuf};

/// The engine's lock universe. Ranked kinds participate in the
/// documented hierarchy (catalog → cache → gate → shard[i asc] → meta);
/// `Named` covers session-local and fixture mutexes, which join cycle
/// detection but not the rank check.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockKind {
    Catalog,
    Cache,
    Gate,
    Shard,
    Meta,
    Admission,
    Named(String),
}

impl LockKind {
    /// Position in the documented lock hierarchy; `None` for unranked
    /// leaf locks (admission/session/fixture mutexes), which may be
    /// taken anywhere but are still checked for cycles.
    pub fn rank(&self) -> Option<u8> {
        match self {
            LockKind::Catalog => Some(0),
            LockKind::Cache => Some(1),
            LockKind::Gate => Some(2),
            LockKind::Shard => Some(3),
            LockKind::Meta => Some(4),
            LockKind::Admission | LockKind::Named(_) => None,
        }
    }
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockKind::Catalog => write!(f, "catalog"),
            LockKind::Cache => write!(f, "cache"),
            LockKind::Gate => write!(f, "gate"),
            LockKind::Shard => write!(f, "shard"),
            LockKind::Meta => write!(f, "meta"),
            LockKind::Admission => write!(f, "admission"),
            LockKind::Named(n) => write!(f, "`{n}`"),
        }
    }
}

/// Map a receiver field name to a lock kind. The engine's lock fields
/// have stable names; anything unrecognised becomes `Named` so fixture
/// code (and future locks) still participate in cycle detection.
fn lock_kind(receiver: &str, path: &str) -> LockKind {
    match receiver {
        "gate" => LockKind::Gate,
        "shards" => LockKind::Shard,
        "meta" => LockKind::Meta,
        "entries" => LockKind::Cache,
        "state" => LockKind::Admission,
        "catalog" => LockKind::Catalog,
        // `SharedCatalog(Arc<RwLock<Catalog>>)` locks through `.0`.
        "0" if path.contains("catalog") => LockKind::Catalog,
        // `self.lock()` helper methods in cache.rs / admission.rs wrap
        // their own single mutex.
        "self" if path.contains("cache") => LockKind::Cache,
        "self" if path.contains("admission") => LockKind::Admission,
        other => LockKind::Named(other.to_string()),
    }
}

/// One direct lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acq {
    pub kind: LockKind,
    pub line: u32,
    /// Index of the `read`/`write`/`lock` ident token.
    pub tok: usize,
    /// Last token index at which the guard is (lexically) held.
    pub span_end: usize,
    /// For shard locks: the index expression classification.
    pub index: Option<ShardIndex>,
    /// True when one statement acquires *several* shard guards at once
    /// (a `.map(…).collect()` / `push` over an iteration source).
    pub multi: bool,
    /// For `multi` acquisitions: the order was proven ascending
    /// (BTreeMap keys, sorted vec, range, or the shard vec itself).
    pub proven_ascending: bool,
}

/// Classification of a shard-lock index expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardIndex {
    Literal(u64),
    Var(String),
    Computed(String),
}

impl fmt::Display for ShardIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardIndex::Literal(n) => write!(f, "{n}"),
            ShardIndex::Var(v) | ShardIndex::Computed(v) => write!(f, "{v}"),
        }
    }
}

/// A direct call observed in a function body, with the locks held at
/// the call site.
#[derive(Debug, Clone)]
pub struct CallEvent {
    pub name: String,
    pub line: u32,
    pub held: Vec<LockKind>,
    /// The call sits lexically inside a `guard`/`guarded_init`/
    /// `catch_unwind` span: the wrapper marker already reports it, so
    /// R7's transitive check skips it (lock edges still propagate).
    pub in_wrapper: bool,
    /// Resolution scope hint: when the receiver is a `with_write`
    /// closure parameter the callee is a `Catalog` method, so the
    /// call-graph only resolves it against files matching this
    /// substring (bare-name resolution would pick up same-named
    /// functions anywhere in the workspace).
    pub file_hint: Option<&'static str>,
}

/// A foreign-code marker (`exec::guard`, `guarded_init`, `catch_unwind`,
/// or a raw accumulator callback), with the locks held around it.
#[derive(Debug, Clone)]
pub struct ForeignEvent {
    pub what: String,
    pub line: u32,
    pub held: Vec<LockKind>,
}

/// A nested-acquisition edge: `to` was acquired while `from` was held.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: LockKind,
    pub to: LockKind,
    pub line: u32,
    /// What the edge came through (empty for a direct nested acquisition,
    /// a call chain description otherwise).
    pub via: String,
}

/// Per-function lock facts, the unit [`crate::callgraph`] works over.
#[derive(Debug, Clone)]
pub struct FnSummary {
    pub name: String,
    pub file: PathBuf,
    pub line: u32,
    pub acquires: Vec<Acq>,
    pub edges: Vec<LockEdge>,
    pub calls: Vec<CallEvent>,
    pub foreign: Vec<ForeignEvent>,
    /// R6 shard-order problems local to this function: (line, message).
    pub order_findings: Vec<(u32, String)>,
}

/// Wrappers that execute user (UDA/closure) code: their presence under a
/// lock is exactly what R7 forbids.
pub const FOREIGN_WRAPPERS: [&str; 3] = ["guard", "guarded_init", "catch_unwind"];

/// Accumulator trait methods: a raw call under a lock is foreign code
/// too (R2 already flags it outside `crates/aggregate`; R7 adds the
/// lock dimension). Zero-argument `.iter()` is slice iteration, exempt.
const FOREIGN_METHODS: [&str; 6] = [
    "init",
    "iter",
    "iter_super",
    "final_value",
    "merge",
    "state",
];

/// Idents that look like calls but are control flow or binding forms.
const NON_CALL_IDENTS: [&str; 14] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "fn", "let",
    "impl", "unsafe",
];

/// Method names shadowed by std collections/iterators/options: a call
/// to one of these is overwhelmingly `Vec::push`, `HashMap::insert`,
/// `Option::map`, … — resolving it by bare name to a same-named engine
/// function would wire the whole workspace together through noise. The
/// cost is that an *engine* method with one of these names is opaque to
/// the call-graph, which the naming convention (and R6/R7 fixtures)
/// accepts.
const GENERIC_CALL_NAMES: [&str; 73] = [
    "register",
    "new",
    "default",
    "with_capacity",
    "insert",
    "remove",
    "push",
    "pop",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "extend",
    "entry",
    "or_default",
    "contains",
    "contains_key",
    "take",
    "set",
    "clone",
    "to_string",
    "to_vec",
    "to_owned",
    "into",
    "from",
    "next",
    "sum",
    "product",
    "min",
    "max",
    "map",
    "map_err",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "collect",
    "filter",
    "filter_map",
    "fold",
    "zip",
    "rev",
    "chain",
    "enumerate",
    "keys",
    "values",
    "sort",
    "sort_unstable",
    "sort_by_key",
    "join",
    "split",
    "trim",
    "parse",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drain",
    "retain",
    "position",
    "find",
    "any",
    "all",
    "copied",
    "cloned",
    "count",
    "last",
    "first",
    "flat_map",
    "for_each",
];

/// Extract per-function summaries from a token stream. Functions whose
/// `fn` token is inside a test region are skipped entirely.
pub fn scan_functions(path: &Path, toks: &[Tok], test_mask: &[bool]) -> Vec<FnSummary> {
    let close_of = crate::bracket_matches(toks);
    let mut open_of: Vec<Option<usize>> = vec![None; toks.len()];
    for (i, c) in close_of.iter().enumerate() {
        if let Some(j) = *c {
            open_of[j] = Some(i);
        }
    }

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") || test_mask.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        // Name follows `fn` (possibly `r#`-stripped by the lexer).
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Find the body `{` at bracket depth 0, or `;` for a bodyless decl.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut body: Option<(usize, usize)> = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        if let Some(close) = close_of[j] {
                            body = Some((j, close));
                        }
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some((open, close)) = body else {
            i = j.max(i + 1);
            continue;
        };
        out.push(scan_fn_body(
            path,
            toks,
            &close_of,
            &open_of,
            name_tok.text.clone(),
            name_tok.line,
            open,
            close,
        ));
        i = close + 1;
    }
    out
}

/// Walk backwards from `at` to the start of its statement: the token
/// after the previous `;`, `{`, or block-`}` at the same nesting level.
/// Bracketed groups encountered while scanning back are skipped over.
fn statement_start(toks: &[Tok], open_of: &[Option<usize>], body_open: usize, at: usize) -> usize {
    let mut j = at;
    while j > body_open + 1 {
        let t = &toks[j - 1];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ";" | "{" | "}" => {
                    // A `}` with a matched opener *behind* an unmatched
                    // context would be jumped below; reaching one here
                    // means the previous statement was a block.
                    return j;
                }
                ")" | "]" => {
                    if let Some(o) = open_of[j - 1] {
                        j = o;
                        continue;
                    }
                    return j;
                }
                _ => {}
            }
        }
        j -= 1;
    }
    body_open + 1
}

/// Walk forward from `at` to the end of its statement: the `;` at
/// statement level, or the token closing a bracket opened *before* the
/// statement began. Closers whose opener is inside the statement are
/// part of it and walked over.
fn statement_end(
    toks: &[Tok],
    close_of: &[Option<usize>],
    open_of: &[Option<usize>],
    body_close: usize,
    stmt_s: usize,
    at: usize,
) -> usize {
    let mut j = at;
    while j < body_close {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ";" => return j,
                "(" | "[" | "{" => {
                    if let Some(c) = close_of[j] {
                        j = c + 1;
                        continue;
                    }
                    return j;
                }
                ")" | "]" | "}" => match open_of[j] {
                    Some(o) if o >= stmt_s => {
                        j += 1;
                        continue;
                    }
                    _ => return j,
                },
                _ => {}
            }
        }
        j += 1;
    }
    body_close
}

/// Innermost `{` enclosing each token in `[open, close]`.
fn enclosing_blocks(toks: &[Tok], open: usize, close: usize) -> Vec<usize> {
    let mut encl = vec![open; close + 1 - open];
    let mut stack = vec![open];
    for j in open + 1..close {
        let t = &toks[j];
        encl[j - open] = *stack.last().unwrap_or(&open);
        if t.is_punct('{') {
            stack.push(j);
        } else if t.is_punct('}') {
            stack.pop();
        }
    }
    encl
}

fn stmt_text(toks: &[Tok], s: usize, e: usize) -> String {
    toks[s..=e.min(toks.len() - 1)]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Does `toks[s..=e]` contain ident `a` immediately followed by `.` and
/// an ident starting with `b_prefix`?
fn has_method_on(toks: &[Tok], s: usize, e: usize, recv: &str, method_prefix: &str) -> bool {
    (s..e.saturating_sub(1)).any(|k| {
        toks[k].is_ident(recv)
            && toks[k + 1].is_punct('.')
            && toks[k + 2].kind == TokKind::Ident
            && toks[k + 2].text.starts_with(method_prefix)
    })
}

#[allow(clippy::too_many_arguments)]
fn scan_fn_body(
    path: &Path,
    toks: &[Tok],
    close_of: &[Option<usize>],
    open_of: &[Option<usize>],
    name: String,
    line: u32,
    open: usize,
    close: usize,
) -> FnSummary {
    let path_str = path.to_string_lossy().replace('\\', "/");
    let encl = enclosing_blocks(toks, open, close);
    let block_close = |tok: usize| -> usize {
        let b = encl[tok - open];
        close_of[b].unwrap_or(close).min(close)
    };

    let mut acquires: Vec<Acq> = Vec::new();
    // `with_write` closure params in scope: (name, span_start, span_end).
    let mut catalog_params: Vec<(String, usize, usize)> = Vec::new();

    // ---- Pass A: direct acquisitions --------------------------------
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        let is_acq_method = (t.is_ident("read") || t.is_ident("write") || t.is_ident("lock"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            && i > open + 1
            && toks[i - 1].is_punct('.');
        let is_with_write = t.is_ident("with_write")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && i > open + 1
            && toks[i - 1].is_punct('.');

        if is_with_write {
            // The closure argument runs under the catalog write lock.
            let span_end = close_of[i + 1].unwrap_or(close).min(close);
            // Remember the closure parameter: calls on it are Catalog
            // methods, which scopes their call-graph resolution.
            for k in i + 2..span_end.min(i + 8) {
                if toks[k].is_punct('|') && toks[k + 1].kind == TokKind::Ident {
                    catalog_params.push((toks[k + 1].text.clone(), i, span_end));
                    break;
                }
            }
            acquires.push(Acq {
                kind: LockKind::Catalog,
                line: t.line,
                tok: i,
                span_end,
                index: None,
                multi: false,
                proven_ascending: true,
            });
            i += 1;
            continue;
        }
        if !is_acq_method {
            i += 1;
            continue;
        }

        let stmt_s = statement_start(toks, open_of, open, i);
        let stmt_e = statement_end(toks, close_of, open_of, close, stmt_s, i);

        // Receiver: `expr . read ( )` — the token before the dot.
        let mut recv_idx = i - 2;
        let mut index_span: Option<(usize, usize)> = None;
        if toks[recv_idx].is_punct(']') {
            if let Some(o) = open_of[recv_idx] {
                index_span = Some((o + 1, recv_idx - 1));
                recv_idx = o.saturating_sub(1);
            }
        }
        let recv_tok = &toks[recv_idx];
        let mut receiver = match recv_tok.kind {
            TokKind::Ident | TokKind::Num => recv_tok.text.clone(),
            TokKind::Punct if recv_tok.is_punct(')') => {
                // `registry().lock()` — name the call.
                open_of[recv_idx]
                    .and_then(|o| o.checked_sub(1))
                    .map(|k| toks[k].text.clone())
                    .unwrap_or_else(|| "?".into())
            }
            _ => "?".into(),
        };

        // Closure-parameter receiver: `src.iter().map(|s| s.read())` —
        // resolve through the iteration source so the guard is typed by
        // what is being iterated, and Vec order proves ascending.
        let mut via_vec_iter = false;
        if index_span.is_none() {
            let is_closure_param = (stmt_s..i).any(|k| {
                toks[k].is_punct('|')
                    && (toks[k + 1].is_ident(&receiver)
                        || (toks[k + 1].is_punct('&') && toks[k + 2].is_ident(&receiver)))
            });
            if is_closure_param {
                // Find `X . iter` before the closure.
                let mut source = None;
                for k in stmt_s..i.saturating_sub(2) {
                    if toks[k].kind == TokKind::Ident
                        && toks[k + 1].is_punct('.')
                        && toks[k + 2].is_ident("iter")
                    {
                        source = Some(toks[k].text.clone());
                    }
                }
                if let Some(src) = source {
                    via_vec_iter = src == "shards";
                    receiver = src;
                }
            }
        }

        let kind = lock_kind(&receiver, &path_str);

        // Index classification for shard locks.
        let index = index_span.map(|(a, b)| {
            if a > b {
                ShardIndex::Computed(String::new())
            } else if a == b && toks[a].kind == TokKind::Num {
                toks[a]
                    .text
                    .parse::<u64>()
                    .map(ShardIndex::Literal)
                    .unwrap_or_else(|_| ShardIndex::Computed(stmt_text(toks, a, b)))
            } else if a == b && toks[a].kind == TokKind::Ident {
                ShardIndex::Var(toks[a].text.clone())
            } else {
                ShardIndex::Computed(stmt_text(toks, a, b))
            }
        });

        // Binding analysis → held span.
        let s0 = &toks[stmt_s];
        let mut span_end;
        let mut bound_name: Option<String> = None;
        if s0.is_ident("let") {
            let mut k = stmt_s + 1;
            if toks[k].is_ident("mut") {
                k += 1;
            }
            if toks[k].kind == TokKind::Ident {
                bound_name = Some(toks[k].text.clone());
            }
            span_end = block_close(stmt_s);
        } else if s0.kind == TokKind::Ident
            && toks.get(stmt_s + 1).is_some_and(|t| t.is_punct('='))
            && !toks.get(stmt_s + 2).is_some_and(|t| t.is_punct('='))
        {
            // `g = …;` — find the bare `let g;` declaration's block.
            bound_name = Some(s0.text.clone());
            let mut decl_block_end = block_close(stmt_s);
            for k in open + 1..stmt_s {
                if toks[k].is_ident("let") {
                    let mut m = k + 1;
                    if toks[m].is_ident("mut") {
                        m += 1;
                    }
                    if toks[m].is_ident(&s0.text)
                        && toks
                            .get(m + 1)
                            .is_some_and(|t| t.is_punct(';') || t.is_punct(':'))
                    {
                        decl_block_end = block_close(k);
                    }
                }
            }
            span_end = decl_block_end;
        } else {
            span_end = stmt_e;
        }

        // An explicit `drop(g)` releases early.
        if let Some(g) = &bound_name {
            for k in stmt_e..span_end.saturating_sub(2) {
                if toks[k].is_ident("drop")
                    && toks[k + 1].is_punct('(')
                    && toks[k + 2].is_ident(g)
                    && toks[k + 3].is_punct(')')
                {
                    span_end = k;
                    break;
                }
            }
        }

        // Multi-shard acquisition: the guards escape an iteration.
        let multi = kind == LockKind::Shard
            && (stmt_s..=stmt_e).any(|k| {
                toks[k].is_ident("collect")
                    || toks[k].is_ident("push")
                    || toks[k].is_ident("extend")
            });
        let proven = if multi {
            prove_ascending(toks, open, stmt_s, stmt_e, &index, via_vec_iter)
        } else {
            via_vec_iter
        };

        acquires.push(Acq {
            kind,
            line: t.line,
            tok: i,
            span_end,
            index,
            multi,
            proven_ascending: proven,
        });
        i += 1;
    }

    // ---- Pass B: order findings and nested edges --------------------
    let mut order_findings: Vec<(u32, String)> = Vec::new();
    for a in &acquires {
        if a.kind == LockKind::Shard && a.multi && !a.proven_ascending {
            order_findings.push((
                a.line,
                format!(
                    "shard locks are collected here in an order not provably ascending \
                     (index `{}`) — route the indexes through a BTreeMap / sorted vec / \
                     range so the fixed-order invariant is checkable, or annotate \
                     `cube-lint: allow(lockorder, reason)`",
                    a.index.as_ref().map(|x| x.to_string()).unwrap_or_default()
                ),
            ));
        }
    }

    let mut edges: Vec<LockEdge> = Vec::new();
    for a in &acquires {
        for b in &acquires {
            if b.tok > a.tok && b.tok <= a.span_end {
                // The hoisted-guard idiom `let g; if x { g = l.write() }
                // else { g = l.read() }` binds the same lock in sibling
                // branches: the second site is an alternative, not a
                // nested acquisition. Same kind + acquisition block
                // already closed before `b` ⇒ skip.
                if a.kind == b.kind && block_close(a.tok) < b.tok {
                    continue;
                }
                if a.kind == LockKind::Shard && b.kind == LockKind::Shard {
                    // Two distinct shard-lock sites with overlapping guards:
                    // ascending is provable only for literal index pairs.
                    match (&a.index, &b.index) {
                        (Some(ShardIndex::Literal(x)), Some(ShardIndex::Literal(y))) if x < y => {}
                        _ if a.multi || b.multi => {
                            // The collected set is one (already checked) site.
                        }
                        (ax, bx) => order_findings.push((
                            b.line,
                            format!(
                                "shard `{}` is locked while shard `{}` is still held — \
                                 not provably ascending; acquire all shards in one \
                                 ascending pass or annotate \
                                 `cube-lint: allow(lockorder, reason)`",
                                bx.as_ref().map(|x| x.to_string()).unwrap_or_default(),
                                ax.as_ref().map(|x| x.to_string()).unwrap_or_default(),
                            ),
                        )),
                    }
                } else {
                    edges.push(LockEdge {
                        from: a.kind.clone(),
                        to: b.kind.clone(),
                        line: b.line,
                        via: String::new(),
                    });
                }
            }
        }
    }

    // ---- Pass C: foreign markers and calls --------------------------
    let held_at = |tok: usize| -> Vec<LockKind> {
        let mut held: Vec<LockKind> = acquires
            .iter()
            .filter(|a| tok > a.tok && tok <= a.span_end)
            .map(|a| a.kind.clone())
            .collect();
        held.sort();
        held.dedup();
        held
    };

    // Wrapper spans first, so raw-callback markers inside them don't
    // double-report.
    let mut wrapper_spans: Vec<(usize, usize)> = Vec::new();
    let mut foreign: Vec<ForeignEvent> = Vec::new();
    for k in open + 1..close {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && FOREIGN_WRAPPERS.contains(&t.text.as_str())
            && toks.get(k + 1).is_some_and(|p| p.is_punct('('))
        {
            let end = close_of[k + 1].unwrap_or(close).min(close);
            wrapper_spans.push((k, end));
            foreign.push(ForeignEvent {
                what: format!("`{}(…)`", t.text),
                line: t.line,
                held: held_at(k),
            });
        }
    }
    for k in open + 1..close {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && FOREIGN_METHODS.contains(&t.text.as_str())
            && k > open + 1
            && toks[k - 1].is_punct('.')
            && toks.get(k + 1).is_some_and(|p| p.is_punct('('))
            && !wrapper_spans.iter().any(|&(a, b)| k > a && k < b)
        {
            // Zero-arg `.iter()` / the admission `state.lock()` field
            // access are not accumulator callbacks.
            if t.text == "iter" && toks.get(k + 2).is_some_and(|p| p.is_punct(')')) {
                continue;
            }
            foreign.push(ForeignEvent {
                what: format!("raw accumulator call `.{}(…)`", t.text),
                line: t.line,
                held: held_at(k),
            });
        }
    }

    let mut calls: Vec<CallEvent> = Vec::new();
    for k in open + 1..close {
        let t = &toks[k];
        if t.kind != TokKind::Ident || !toks.get(k + 1).is_some_and(|p| p.is_punct('(')) {
            continue;
        }
        let name_str = t.text.as_str();
        // `failpoint` is cfg-gated test instrumentation, compiled out of
        // release builds — not a lock-relevant call target.
        if NON_CALL_IDENTS.contains(&name_str)
            || FOREIGN_WRAPPERS.contains(&name_str)
            // Accumulator methods are foreign *markers*, never call-graph
            // targets (a zero-arg `.iter()` is slice iteration).
            || FOREIGN_METHODS.contains(&name_str)
            || GENERIC_CALL_NAMES.contains(&name_str)
            || matches!(name_str, "read" | "write" | "lock" | "drop" | "failpoint")
            || name_str
                .chars()
                .next()
                .is_some_and(|c| c.is_uppercase())
        {
            continue;
        }
        let file_hint = (k >= 2
            && toks[k - 1].is_punct('.')
            && catalog_params
                .iter()
                .any(|(p, s, e)| k > *s && k < *e && toks[k - 2].is_ident(p)))
        .then_some("catalog");
        calls.push(CallEvent {
            name: t.text.clone(),
            line: t.line,
            held: held_at(k),
            in_wrapper: wrapper_spans.iter().any(|&(a, b)| k > a && k < b),
            file_hint,
        });
    }

    FnSummary {
        name,
        file: path.to_path_buf(),
        line,
        acquires,
        edges,
        calls,
        foreign,
        order_findings,
    }
}

/// Can the iteration feeding a multi-shard acquisition be proven
/// ascending? Accepted proofs, checked lexically within the function:
/// a `..` range in the statement, iterating `shards` itself, an index
/// source whose `let` mentions `BTreeMap` (or whose `.keys()` receiver
/// does), or a source that was `.sort*()`-ed before use.
fn prove_ascending(
    toks: &[Tok],
    body_open: usize,
    stmt_s: usize,
    stmt_e: usize,
    _index: &Option<ShardIndex>,
    via_vec_iter: bool,
) -> bool {
    if via_vec_iter {
        return true;
    }
    let in_stmt = |pat: &str| (stmt_s..=stmt_e).any(|k| toks[k].is_ident(pat));
    // Range iteration: `(0..N)` or `for s in 0..N`.
    if (stmt_s..stmt_e).any(|k| toks[k].is_punct('.') && toks[k + 1].is_punct('.')) {
        return true;
    }
    if has_method_on(toks, stmt_s, stmt_e, "shards", "iter") {
        return true;
    }
    if in_stmt("BTreeMap") {
        return true;
    }
    // Find the iteration source: `X . iter` (or `X . keys`) in the stmt.
    let mut source: Option<String> = None;
    for k in stmt_s..stmt_e.saturating_sub(2) {
        if toks[k].kind == TokKind::Ident
            && toks[k + 1].is_punct('.')
            && (toks[k + 2].text.starts_with("iter") || toks[k + 2].is_ident("keys"))
        {
            source = Some(toks[k].text.clone());
            break;
        }
    }
    let Some(src) = source else { return false };
    source_is_ordered(toks, body_open, stmt_s, &src, 0)
}

/// Is `src`'s definition (or mutation history) before `stmt_s` provably
/// ascending? Follows one level of `.keys()` indirection.
fn source_is_ordered(toks: &[Tok], body_open: usize, stmt_s: usize, src: &str, depth: u8) -> bool {
    if depth > 2 {
        return false;
    }
    // `src.sort()` / `src.sort_unstable()` anywhere before use.
    if has_method_on(toks, body_open, stmt_s, src, "sort") {
        return true;
    }
    // `let src … = …;` definitions.
    for k in body_open + 1..stmt_s {
        if !toks[k].is_ident("let") {
            continue;
        }
        let mut m = k + 1;
        if toks[m].is_ident("mut") {
            m += 1;
        }
        if !toks[m].is_ident(src) {
            continue;
        }
        // Statement extent: to the next `;` at this level (lexically —
        // good enough for a `let`).
        let mut e = m;
        let mut depth_brk = 0i32;
        while e < stmt_s {
            let t = &toks[e];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth_brk += 1,
                    ")" | "]" | "}" => depth_brk -= 1,
                    ";" if depth_brk <= 0 => break,
                    _ => {}
                }
            }
            e += 1;
        }
        if (k..e).any(|x| toks[x].is_ident("BTreeMap") || toks[x].text.starts_with("sort")) {
            return true;
        }
        if (k..e).any(|x| toks[x].is_punct('.') && x + 1 < e && toks[x + 1].is_punct('.')) {
            return true; // built from a range
        }
        // `let src = Y.keys()…` — recurse into Y.
        for x in k..e.saturating_sub(2) {
            if toks[x].kind == TokKind::Ident
                && toks[x + 1].is_punct('.')
                && toks[x + 2].is_ident("keys")
                && source_is_ordered(toks, body_open, k, &toks[x].text, depth + 1)
            {
                return true;
            }
        }
    }
    false
}
