//! Cross-procedural lock analysis: propagate per-function lock
//! summaries ([`crate::locks::FnSummary`]) through direct calls and
//! report R6 (lock-order) and R7 (foreign-code-under-lock) findings.
//!
//! Resolution is by bare function name across every linted file — a
//! deliberately conservative choice for a lexical analyzer: two methods
//! sharing a name merge their summaries, which can only *add* edges,
//! never hide one.

use crate::lexer::TokKind;
use crate::locks::{FnSummary, LockKind};
use crate::{FileReport, Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Locks under which reaching foreign (UDA/closure) code is an R7
/// violation: the shard/gate pair that serializes cell maintenance, and
/// the catalog lock every reader shares.
fn sensitive(kind: &LockKind) -> bool {
    matches!(kind, LockKind::Shard | LockKind::Gate | LockKind::Catalog)
}

/// Run the inter-procedural R6/R7 checks over a set of file reports.
/// Suppressions are applied here, using each file's own `Allows`.
pub fn check_lock_discipline(reports: &[&FileReport]) -> Vec<Finding> {
    let fns: Vec<&FnSummary> = reports.iter().flat_map(|r| &r.fns).collect();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    // Honour a call's resolution scope (e.g. `with_write` closure calls
    // only resolve against catalog.rs).
    let resolves = |call: &crate::locks::CallEvent, c: usize| -> bool {
        call.file_hint
            .is_none_or(|hint| fns[c].file.to_string_lossy().contains(hint))
    };

    // ---- Fixpoint: effective acquisitions & foreign reachability ----
    let mut acquires: Vec<BTreeSet<LockKind>> = fns
        .iter()
        .map(|f| f.acquires.iter().map(|a| a.kind.clone()).collect())
        .collect();
    // `reaches[i]` = Some(description of how fn i reaches foreign code).
    let mut reaches: Vec<Option<String>> = fns
        .iter()
        .map(|f| f.foreign.first().map(|e| e.what.clone()))
        .collect();

    loop {
        let mut changed = false;
        for (i, f) in fns.iter().enumerate() {
            for call in &f.calls {
                let Some(callees) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                for &c in callees {
                    if c == i || !resolves(call, c) {
                        continue;
                    }
                    let add: Vec<LockKind> = acquires[c]
                        .iter()
                        .filter(|k| !acquires[i].contains(*k))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        acquires[i].extend(add);
                        changed = true;
                    }
                    if reaches[i].is_none() {
                        if let Some(via) = &reaches[c] {
                            reaches[i] = Some(format!("{} → {}", call.name, via));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- Build the global lock graph --------------------------------
    // Edge (from → to) with one witness (file, line, description).
    let mut edges: BTreeMap<(LockKind, LockKind), (usize, u32, String)> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        for e in &f.edges {
            edges.entry((e.from.clone(), e.to.clone())).or_insert((
                i,
                e.line,
                format!("`{}` acquires {} while holding {}", f.name, e.to, e.from),
            ));
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(callees) = by_name.get(call.name.as_str()) else {
                continue;
            };
            for &c in callees {
                if c == i || !resolves(call, c) {
                    continue;
                }
                for to in &acquires[c] {
                    for from in &call.held {
                        if from == to && *from == LockKind::Shard {
                            // Shard-under-shard ordering is R6's ascending
                            // check, handled with index information.
                            continue;
                        }
                        edges.entry((from.clone(), to.clone())).or_insert((
                            i,
                            call.line,
                            format!(
                                "`{}` calls `{}` (which acquires {}) while holding {}",
                                f.name, call.name, to, from
                            ),
                        ));
                    }
                }
            }
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut push = |fn_idx: usize, line: u32, rule: Rule, message: String| {
        let file = &fns[fn_idx].file;
        let allowed = reports
            .iter()
            .find(|r| &r.path == file)
            .is_some_and(|r| r.allows.allowed(rule, line));
        if !allowed {
            findings.push(Finding {
                file: file.clone(),
                line,
                rule,
                message,
            });
        }
    };

    // ---- R6a: per-function shard-order findings ---------------------
    for (i, f) in fns.iter().enumerate() {
        for (line, msg) in &f.order_findings {
            push(i, *line, Rule::LockOrder, msg.clone());
        }
    }

    // ---- R6b: hierarchy inversions and re-acquisition ---------------
    for ((from, to), (i, line, via)) in &edges {
        if from == to {
            push(
                *i,
                *line,
                Rule::LockOrder,
                format!(
                    "the {from} lock is (transitively) re-acquired while already held — \
                     self-deadlock on a non-reentrant lock: {via}"
                ),
            );
        } else if let (Some(a), Some(b)) = (from.rank(), to.rank()) {
            if a > b {
                push(
                    *i,
                    *line,
                    Rule::LockOrder,
                    format!(
                        "lock-order inversion: {to} is acquired while {from} is held, \
                         against the documented hierarchy \
                         (catalog → cache → gate → shard[i asc] → meta): {via}"
                    ),
                );
            }
        }
    }

    // ---- R6c: cycles in the lock graph ------------------------------
    // DFS over distinct-kind edges; each back-edge is one reported cycle.
    let mut adj: BTreeMap<&LockKind, Vec<&LockKind>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        if from != to {
            adj.entry(from).or_default().push(to);
        }
    }
    let nodes: Vec<&LockKind> = adj.keys().copied().collect();
    let mut visited: BTreeSet<&LockKind> = BTreeSet::new();
    for &start in &nodes {
        if visited.contains(start) {
            continue;
        }
        let mut stack: Vec<(&LockKind, usize)> = vec![(start, 0)];
        let mut on_path: Vec<&LockKind> = vec![start];
        visited.insert(start);
        while let Some((node, next)) = stack.last().cloned() {
            let succs = adj.get(node).cloned().unwrap_or_default();
            if next >= succs.len() {
                stack.pop();
                on_path.pop();
                continue;
            }
            stack.last_mut().expect("non-empty").1 += 1;
            let succ = succs[next];
            if let Some(pos) = on_path.iter().position(|&k| k == succ) {
                // Back-edge node → succ closes a cycle.
                let cycle: Vec<String> = on_path[pos..]
                    .iter()
                    .map(|k| k.to_string())
                    .chain(std::iter::once(succ.to_string()))
                    .collect();
                let (i, line, via) = &edges[&((*node).clone(), (*succ).clone())];
                push(
                    *i,
                    *line,
                    Rule::LockOrder,
                    format!(
                        "lock acquisition cycle: {} — two threads entering this cycle \
                         from different points deadlock ({via})",
                        cycle.join(" → ")
                    ),
                );
            } else if !visited.contains(succ) {
                visited.insert(succ);
                on_path.push(succ);
                stack.push((succ, 0));
            }
        }
    }

    // ---- R7: foreign code reachable under a sensitive lock ----------
    for (i, f) in fns.iter().enumerate() {
        for ev in &f.foreign {
            if let Some(k) = ev.held.iter().find(|k| sensitive(k)) {
                push(
                    i,
                    ev.line,
                    Rule::Foreign,
                    format!(
                        "{} runs while the {k} lock is held — user/UDA code under an \
                         engine lock can stall or poison every other session; stage \
                         outside the lock or annotate \
                         `cube-lint: allow(foreign, reason)`",
                        ev.what
                    ),
                );
            }
        }
        for call in &f.calls {
            if call.in_wrapper {
                continue;
            }
            let Some(k) = call.held.iter().find(|k| sensitive(k)) else {
                continue;
            };
            let Some(callees) = by_name.get(call.name.as_str()) else {
                continue;
            };
            // Direct foreign markers in the callee (or deeper) fire; use
            // the first resolved callee's witness chain.
            if let Some(via) = callees
                .iter()
                .filter(|&&c| c != i && resolves(call, c))
                .find_map(|&c| {
                    reaches[c]
                        .as_ref()
                        .map(|w| format!("{} → {}", call.name, w))
                })
            {
                push(
                    i,
                    call.line,
                    Rule::Foreign,
                    format!(
                        "this call reaches foreign (UDA/closure) code while the {k} \
                         lock is held ({via}) — stage outside the lock or annotate \
                         `cube-lint: allow(foreign, reason)`"
                    ),
                );
            }
        }
    }

    findings.sort();
    findings.dedup();
    findings
}

/// R8: every `Ordering::Relaxed` in non-test code needs a stronger
/// ordering or a reasoned suppression. Relaxed is correct for monotone
/// counters — and silently wrong for anything on the publish path
/// (catalog version, admission budget, shutdown flag), so the burden of
/// proof sits in the annotation.
pub(crate) fn r8_atomic(ctx: &crate::rules::RuleCtx<'_>, push: &mut dyn FnMut(Rule, u32, String)) {
    let toks = ctx.toks;
    for i in 0..toks.len().saturating_sub(3) {
        if ctx.test_mask[i] {
            continue;
        }
        if toks[i].is_ident("Ordering")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("Relaxed")
        {
            push(
                Rule::Atomic,
                toks[i + 3].line,
                "`Ordering::Relaxed` — relaxed loads/stores may reorder against the \
                 data they publish; use Acquire/Release/SeqCst, or annotate \
                 `cube-lint: allow(atomic, reason)` if this atomic publishes nothing"
                    .into(),
            );
        }
    }
}

/// Methods that commit a new catalog version.
const COMMIT_METHODS: [&str; 2] = ["replace_if_version", "update_table"];
/// Calls that propagate a committed version to the subcube cache.
const PROPAGATE_METHODS: [&str; 3] = ["apply_delta", "invalidate_table", "invalidate_all"];

/// R9: a catalog version commit must be lexically followed, in the same
/// function, by the cache invalidate/absorb call that propagates it —
/// so a future edit cannot commit a version the cache never hears about.
pub(crate) fn r9_commit(ctx: &crate::rules::RuleCtx<'_>, push: &mut dyn FnMut(Rule, u32, String)) {
    let p = ctx.path.to_string_lossy().replace('\\', "/");
    // The catalog itself (and the cache, which *is* the propagation
    // target) implement the mechanism; adjacency applies to callers.
    if p.ends_with("catalog.rs") || p.ends_with("cache.rs") {
        return;
    }
    let toks = ctx.toks;
    let close_of = crate::bracket_matches(toks);

    // Function extents, so "followed by" stops at the function edge.
    let mut fn_ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            if let Some(c) = close_of[j] {
                                fn_ranges.push((j, c));
                                i = j;
                            }
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
        }
        i += 1;
    }

    for &(open, close) in &fn_ranges {
        for k in open + 1..close {
            if ctx.test_mask[k] {
                continue;
            }
            let t = &toks[k];
            if t.kind != TokKind::Ident
                || !COMMIT_METHODS.contains(&t.text.as_str())
                || !toks[k - 1].is_punct('.')
                || !toks.get(k + 1).is_some_and(|p| p.is_punct('('))
            {
                continue;
            }
            let propagated = (k + 1..close).any(|m| {
                toks[m].kind == TokKind::Ident
                    && PROPAGATE_METHODS.contains(&toks[m].text.as_str())
                    && toks[m - 1].is_punct('.')
                    && toks.get(m + 1).is_some_and(|p| p.is_punct('('))
            });
            if !propagated {
                push(
                    Rule::Commit,
                    t.line,
                    format!(
                        "`{}` commits a catalog version but no cache \
                         `apply_delta`/`invalidate_table`/`invalidate_all` follows in \
                         this function — readers would serve the old subcubes forever; \
                         propagate the version here or annotate \
                         `cube-lint: allow(commit, reason)`",
                        t.text
                    ),
                );
            }
        }
    }
}
