//! `cube_lint` CLI: lint the workspace, print `file:line: [rule] message`
//! diagnostics (or `--json`), exit non-zero when any invariant is broken.
//!
//! ```text
//! cube_lint [--root <workspace-root>] [--json]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("cube_lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: cube_lint [--root <workspace-root>] [--json]");
                println!("rules: checkpoint, guard, faults, panic, wildcard (see DESIGN.md)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cube_lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match cube_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cube_lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", cube_lint::render_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!(
                "cube_lint: workspace clean (rules: checkpoint, guard, faults, panic, wildcard)"
            );
        } else {
            eprintln!("cube_lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
