//! `cube_lint` CLI: lint the workspace, print `file:line: [rule] message`
//! diagnostics (or `--json`), exit non-zero when any invariant is broken.
//!
//! ```text
//! cube_lint [--root <workspace-root>] [--json [out.json]]
//! ```
//!
//! `--json` with no operand writes the findings array to stdout; with a
//! path it writes the file *and* keeps the human diagnostics on stdout,
//! which is how `verify.sh` archives the run.

use std::path::PathBuf;
use std::process::ExitCode;

const RULES: &str =
    "checkpoint, guard, faults, panic, wildcard, lockorder, foreign, atomic, commit";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json = true;
                if let Some(next) = args.peek() {
                    if !next.starts_with('-') {
                        json_path = Some(PathBuf::from(args.next().unwrap_or_default()));
                    }
                }
            }
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("cube_lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: cube_lint [--root <workspace-root>] [--json [out.json]]");
                println!("rules: {RULES} (see DESIGN.md)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cube_lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match cube_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cube_lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, cube_lint::render_json(&findings)) {
            eprintln!("cube_lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json && json_path.is_none() {
        println!("{}", cube_lint::render_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("cube_lint: workspace clean (rules: {RULES})");
        } else {
            eprintln!("cube_lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
