//! A minimal Rust lexer for `cube_lint`.
//!
//! The linter's rules are *lexical* invariants — "this loop body contains a
//! `checkpoint` call", "this `.unwrap()` token exists" — so a full parse is
//! unnecessary. What *is* necessary is getting the token boundaries right:
//! string literals (including raw strings), char literals vs. lifetimes,
//! nested block comments, and raw identifiers all have to be skipped or
//! classified correctly, or a `"panic!"` inside a string would fire R4.
//!
//! The lexer is deliberately forgiving: on malformed input it degrades to
//! single-character punct tokens rather than erroring, because the source
//! it scans has already passed `rustc`.

/// Token classification — only as fine-grained as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_` and raw `r#ident`s, with the
    /// `r#` prefix stripped).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// String literal of any flavour (`"…"`, `r"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (value is irrelevant to every rule).
    Num,
    /// Single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For `Str` this is the *contents* without quotes or the
    /// raw-string hashes, so R3 can compare fault-site names directly.
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, dropping comments and whitespace. Never fails: input
/// that already compiles always lexes; anything else degrades to puncts.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let count_lines = |slice: &[char]| slice.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if chars[i + 1] == '*' {
                // Nested block comments, per the Rust grammar.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(&chars[start..i.min(n)]);
                continue;
            }
        }
        // Raw strings and raw identifiers: r"…", r#"…"#, r#ident, br#"…"#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, is_raw_str) = raw_string_prefix(&chars[i..]);
            if is_raw_str {
                let start = i;
                i += prefix_len; // past r##…"
                let hashes = prefix_len - 2 - usize::from(chars[start] == 'b');
                // Content runs until `"` followed by `hashes` `#`s.
                let content_start = i;
                while i < n {
                    if chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                        break;
                    }
                    i += 1;
                }
                let content: String = chars[content_start..i.min(n)].iter().collect();
                let tok_line = line;
                line += count_lines(&chars[start..i.min(n)]);
                i = (i + 1 + hashes).min(n); // past closing quote + hashes
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: tok_line,
                });
                continue;
            }
            if c == 'r' && chars[i + 1] == '#' && i + 2 < n && is_ident_start(chars[i + 2]) {
                // Raw identifier r#match — strip the prefix so rules see
                // the bare name.
                let start = i + 2;
                let mut j = start;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
        }
        // Ordinary (or byte) string literal.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            let start = i;
            i += if c == 'b' { 2 } else { 1 };
            let content_start = i;
            while i < n && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1; // skip the escaped char
                }
                i += 1;
            }
            let content: String = chars[content_start..i.min(n)].iter().collect();
            let tok_line = line;
            line += count_lines(&chars[start..i.min(n)]);
            i = (i + 1).min(n);
            toks.push(Tok {
                kind: TokKind::Str,
                text: content,
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime. `'a` with no closing quote after one
        // identifier run is a lifetime; `'x'` / `'\n'` are chars.
        if c == '\'' || (c == 'b' && i + 1 < n && chars[i + 1] == '\'') {
            let q = if c == 'b' { i + 1 } else { i };
            if q + 1 < n {
                let next = chars[q + 1];
                if next == '\\' {
                    // Escaped char literal: skip to closing quote.
                    let mut j = q + 2;
                    if j < n {
                        j += 1; // the escaped character itself
                    }
                    while j < n && chars[j] != '\'' {
                        j += 1; // \u{…} bodies
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = (j + 1).min(n);
                    continue;
                }
                if is_ident_start(next) {
                    let mut j = q + 2;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' && j == q + 2 {
                        // 'x'
                        toks.push(Tok {
                            kind: TokKind::Char,
                            text: chars[q + 1..j].iter().collect(),
                            line,
                        });
                        i = j + 1;
                        continue;
                    }
                    // Lifetime 'ident (no closing quote).
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[q + 1..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
                // 'x' where x is not ident-ish (e.g. '+').
                if q + 2 < n && chars[q + 2] == '\'' {
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: chars[q + 1..q + 2].iter().collect(),
                        line,
                    });
                    i = q + 3;
                    continue;
                }
            }
            // Stray quote: emit as punct and move on.
            toks.push(Tok {
                kind: TokKind::Punct,
                text: "'".into(),
                line,
            });
            i += 1;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number: digits and any alphanumeric suffix; a following `.` is
        // consumed only when a digit follows it, so `0..n` stays a range.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Single punctuation character.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Detect an `r"…"` / `r#…#"…"` / `br"…"` prefix at the start of `chars`.
/// Returns (prefix length up to and including the opening quote, matched).
fn raw_string_prefix(chars: &[char]) -> (usize, bool) {
    let mut j = 0usize;
    if chars.first() == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return (0, false);
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        (j + 1, true)
    } else {
        (0, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents_from_rules() {
        let toks = kinds(r#"let x = "panic!(unwrap())";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "panic" && t != "unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("panic")));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r###"let s = r#"has "quotes" and unwrap()"#; r#match"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quotes")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "match"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_are_dropped_and_lines_tracked() {
        let toks = tokenize("// unwrap()\n/* panic! \n */ foo");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "foo");
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = kinds("for i in 0..cells {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "cells"));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Punct && t == ".")
                .count(),
            2
        );
    }
}
