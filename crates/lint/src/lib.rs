//! `cube_lint` — workspace invariant checker.
//!
//! The runtime machinery built in PRs 2–4 (execution governance, panic
//! isolation, fault injection) rests on *source-level* invariants that no
//! test can prove in general: a new algorithm that forgets its checkpoint
//! poll, or a call path that reaches user aggregate code outside the
//! `catch_unwind` guards, is correct on every test input and still wrong.
//! This crate checks those invariants mechanically, the way large Rust
//! systems use dylint/custom clippy passes — but self-contained (a token
//! scanner over the lexer in [`lexer`]), so it runs offline and has no
//! dependency on compiler internals.
//!
//! ## Rules
//!
//! * **R1 `checkpoint`** — every `for`/`while` loop in
//!   `crates/core/src/algorithm/` and `groupby.rs` whose header mentions a
//!   row/morsel/cell iteration subject must contain a `checkpoint`,
//!   `tick`, `poll`, or `failpoint` call in its body.
//! * **R2 `guard`** — accumulator/UDF trait calls (`init`, `iter`,
//!   `iter_super`, `final_value`, `merge`) outside `crates/aggregate` must
//!   sit inside `exec::guard`/`guarded_init`/`catch_unwind`.
//! * **R3 `faults`** — the site names declared in
//!   `crates/aggregate/src/faults.rs` (`SITES`) must exactly equal the set
//!   referenced at `failpoint("…")`/`faults::hit("…")` injection points.
//! * **R4 `panic`** — no `unwrap()`/`expect()`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` in non-test library code.
//! * **R5 `wildcard`** — no `_` match arms in matches whose patterns
//!   destructure `Value`, so adding a `Value` variant fails loudly.
//! * **R6 `lockorder`** — the inter-procedural lock graph (built from
//!   per-function acquisition summaries in [`locks`], propagated through
//!   direct calls in [`callgraph`]) must be acyclic and respect the
//!   documented hierarchy (catalog → cache → gate → shard[i asc] →
//!   meta); multi-shard acquisitions must be provably ascending.
//! * **R7 `foreign`** — no `exec::guard`/`guarded_init`/`catch_unwind`
//!   or raw accumulator callback reachable while a shard, gate, or
//!   catalog lock is held.
//! * **R8 `atomic`** — every `Ordering::Relaxed` needs a stronger
//!   ordering or a reasoned suppression.
//! * **R9 `commit`** — a catalog version commit
//!   (`replace_if_version`/`update_table`) must be followed in the same
//!   function by the cache call that propagates it.
//!
//! Any finding can be suppressed with a justified annotation on the same
//! line or the line above:
//!
//! ```text
//! // cube-lint: allow(panic, len checked above)
//! ```
//!
//! The annotation *requires* a reason — `allow(panic)` alone does not
//! parse and the finding stands.

mod callgraph;
pub mod lexer;
pub mod locks;
mod rules;

pub use callgraph::check_lock_discipline;

use lexer::{tokenize, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Which rule produced a finding. The `code()` string is what `allow(…)`
/// annotations name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    Checkpoint,
    Guard,
    Faults,
    Panic,
    Wildcard,
    LockOrder,
    Foreign,
    Atomic,
    Commit,
}

impl Rule {
    pub fn code(self) -> &'static str {
        match self {
            Rule::Checkpoint => "checkpoint",
            Rule::Guard => "guard",
            Rule::Faults => "faults",
            Rule::Panic => "panic",
            Rule::Wildcard => "wildcard",
            Rule::LockOrder => "lockorder",
            Rule::Foreign => "foreign",
            Rule::Atomic => "atomic",
            Rule::Commit => "commit",
        }
    }
}

/// One diagnostic: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: PathBuf,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

impl Finding {
    /// Render as a JSON object (hand-rolled; no serde in the toolchain).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":{},"line":{},"rule":{},"message":{}}}"#,
            json_str(&self.file.display().to_string()),
            self.line,
            json_str(self.rule.code()),
            json_str(&self.message)
        )
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a full findings list as a JSON array.
pub fn render_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings.iter().map(Finding::to_json).collect();
    format!("[{}]", items.join(","))
}

/// How a file participates in the rule set, derived from its path (and
/// overridable for fixture tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// R1 applies: an algorithm file (`crates/core/src/algorithm/*`,
    /// `groupby.rs`).
    pub algorithm: bool,
    /// R2 is *skipped*: inside `crates/aggregate`, the trait's home crate,
    /// where raw calls are the implementation itself.
    pub aggregate_crate: bool,
    /// This is the fault-site registry (`crates/aggregate/src/faults.rs`):
    /// R3 reads `SITES` from it and ignores its internal `hit` machinery.
    pub faults_registry: bool,
}

impl FileClass {
    /// Classify by workspace-relative path.
    pub fn from_path(path: &Path) -> FileClass {
        let p = path.to_string_lossy().replace('\\', "/");
        FileClass {
            algorithm: p.contains("crates/core/src/algorithm/")
                || p.ends_with("crates/core/src/groupby.rs"),
            aggregate_crate: p.contains("crates/aggregate/"),
            faults_registry: p.ends_with("crates/aggregate/src/faults.rs"),
        }
    }
}

/// `// cube-lint: allow(rule, reason)` annotations, by line.
#[derive(Debug, Default)]
pub struct Allows {
    /// line -> set of rule codes allowed there.
    by_line: BTreeMap<u32, BTreeSet<String>>,
    /// Annotations that never matched a finding (for future use; also
    /// catches `allow(panic)` written without a reason).
    pub malformed: Vec<(u32, String)>,
}

impl Allows {
    /// Scan raw source for annotations. Only comment text is considered:
    /// the marker must appear after a `//` on its line.
    pub fn parse(src: &str) -> Allows {
        let mut allows = Allows::default();
        for (i, raw) in src.lines().enumerate() {
            let line = i as u32 + 1;
            let Some(comment_at) = raw.find("//") else {
                continue;
            };
            let comment = &raw[comment_at..];
            let mut rest = comment;
            while let Some(pos) = rest.find("cube-lint:") {
                let after = &rest[pos + "cube-lint:".len()..];
                let trimmed = after.trim_start();
                if let Some(body) = trimmed.strip_prefix("allow(") {
                    if let Some(end) = body.find(')') {
                        let inner = &body[..end];
                        match inner.split_once(',') {
                            Some((rule, reason)) if !reason.trim().is_empty() => {
                                allows
                                    .by_line
                                    .entry(line)
                                    .or_default()
                                    .insert(rule.trim().to_string());
                            }
                            _ => {
                                allows.malformed.push((
                                    line,
                                    format!(
                                        "allow({inner}) is missing its reason: \
                                         write `cube-lint: allow(rule, why this is safe)`"
                                    ),
                                ));
                            }
                        }
                    }
                }
                rest = &rest[pos + "cube-lint:".len()..];
            }
        }
        allows
    }

    /// Is `rule` allowed at `line`? An annotation covers its own line and
    /// the line directly below it (annotation-above style).
    pub fn allowed(&self, rule: Rule, line: u32) -> bool {
        let hit = |l: u32| {
            self.by_line
                .get(&l)
                .is_some_and(|set| set.contains(rule.code()))
        };
        hit(line) || (line > 0 && hit(line - 1))
    }
}

/// Everything one file contributes: its findings plus the cross-file
/// fault-site facts R3 aggregates at workspace level.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    /// The path the file was linted under (workspace-relative), so the
    /// cross-file passes can attribute findings and suppressions.
    pub path: PathBuf,
    /// Site names declared in the `SITES` const (registry file only),
    /// with the line of each declaration.
    pub declared_sites: Vec<(String, u32)>,
    /// Line of the `SITES` declaration itself, for orphan diagnostics.
    pub sites_decl_line: Option<u32>,
    /// Site names referenced at injection points in this file.
    pub referenced_sites: Vec<(String, u32)>,
    /// Per-function lock summaries for the R6/R7 call-graph pass.
    pub fns: Vec<locks::FnSummary>,
    /// The file's suppression annotations, re-consulted by the
    /// workspace-level passes (which run after `lint_source` returns).
    pub allows: Allows,
}

/// Lint one file's source. `path` is used only for diagnostics.
pub fn lint_source(path: &Path, src: &str, class: FileClass) -> FileReport {
    let toks = tokenize(src);
    let allows = Allows::parse(src);
    let test_mask = rules::test_region_mask(&toks);
    let ctx = rules::RuleCtx {
        path,
        toks: &toks,
        test_mask: &test_mask,
        class,
    };

    let mut report = FileReport::default();
    let mut push = |rule: Rule, line: u32, message: String| {
        if !allows.allowed(rule, line) {
            report.findings.push(Finding {
                file: path.to_path_buf(),
                line,
                rule,
                message,
            });
        }
    };

    if class.algorithm {
        rules::r1_checkpoint(&ctx, &mut push);
    }
    if !class.aggregate_crate {
        rules::r2_guard(&ctx, &mut push);
    }
    rules::r4_panic(&ctx, &mut push);
    rules::r5_wildcard(&ctx, &mut push);
    callgraph::r8_atomic(&ctx, &mut push);
    callgraph::r9_commit(&ctx, &mut push);

    // A malformed annotation is itself a finding: silent typos must not
    // silently re-enable what the author meant to suppress.
    for (line, msg) in &allows.malformed {
        report.findings.push(Finding {
            file: path.to_path_buf(),
            line: *line,
            rule: Rule::Panic,
            message: msg.clone(),
        });
    }

    if class.faults_registry {
        let (declared, decl_line) = rules::r3_declared_sites(&ctx);
        report.declared_sites = declared;
        report.sites_decl_line = decl_line;
    } else {
        report.referenced_sites = rules::r3_referenced_sites(&ctx);
    }
    report.fns = locks::scan_functions(path, &toks, &test_mask);
    report.path = path.to_path_buf();
    report.allows = allows;
    report
}

/// Cross-file R3 check: declared set == referenced set, no duplicates.
pub fn check_fault_sites(
    registry_path: &Path,
    declared: &[(String, u32)],
    sites_decl_line: Option<u32>,
    referenced: &[(PathBuf, String, u32)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: BTreeMap<&str, u32> = BTreeMap::new();
    for (name, line) in declared {
        if seen.insert(name.as_str(), *line).is_some() {
            findings.push(Finding {
                file: registry_path.to_path_buf(),
                line: *line,
                rule: Rule::Faults,
                message: format!("fault site \"{name}\" declared more than once in SITES"),
            });
        }
    }
    if sites_decl_line.is_none() {
        findings.push(Finding {
            file: registry_path.to_path_buf(),
            line: 1,
            rule: Rule::Faults,
            message: "faults registry has no `SITES` declaration for cube_lint to check".into(),
        });
        return findings;
    }
    let declared_set: BTreeSet<&str> = declared.iter().map(|(n, _)| n.as_str()).collect();
    let mut referenced_set: BTreeSet<&str> = BTreeSet::new();
    for (file, name, line) in referenced {
        referenced_set.insert(name.as_str());
        if !declared_set.contains(name.as_str()) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: Rule::Faults,
                message: format!(
                    "fault site \"{name}\" is injected here but not declared in \
                     faults::SITES — register it so tests can enumerate every site"
                ),
            });
        }
    }
    for (name, line) in declared {
        if !referenced_set.contains(name.as_str()) {
            findings.push(Finding {
                file: registry_path.to_path_buf(),
                line: *line,
                rule: Rule::Faults,
                message: format!(
                    "fault site \"{name}\" is declared in SITES but no failpoint \
                     references it — remove it or wire up the injection point"
                ),
            });
        }
    }
    findings
}

/// The crates whose `src/` trees the workspace lint walks. `bench` and
/// `oracle` are test/benchmark harnesses, not engine code, and are
/// deliberately out of scope (they panic by design on harness bugs).
pub const LINTED_CRATES: [&str; 5] = ["core", "aggregate", "relation", "sql", "warehouse"];

/// Walk the workspace at `root` and lint every in-scope file.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    for krate in LINTED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        collect_rs_files(&src, &mut files)
            .map_err(|e| format!("walking {}: {e}", src.display()))?;
    }
    files.sort();

    let mut findings = Vec::new();
    let mut declared: Vec<(String, u32)> = Vec::new();
    let mut sites_decl_line = None;
    let mut registry_path = root.join("crates/aggregate/src/faults.rs");
    let mut referenced: Vec<(PathBuf, String, u32)> = Vec::new();
    let mut reports: Vec<FileReport> = Vec::new();

    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        let class = FileClass::from_path(&rel);
        let mut report = lint_source(&rel, &src, class);
        findings.append(&mut report.findings);
        if class.faults_registry {
            declared = report.declared_sites.clone();
            sites_decl_line = report.sites_decl_line;
            registry_path = rel.clone();
        }
        for (name, line) in &report.referenced_sites {
            referenced.push((rel.clone(), name.clone(), *line));
        }
        reports.push(report);
    }
    findings.extend(check_fault_sites(
        &registry_path,
        &declared,
        sites_decl_line,
        &referenced,
    ));
    let report_refs: Vec<&FileReport> = reports.iter().collect();
    findings.extend(callgraph::check_lock_discipline(&report_refs));
    findings.sort();
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Shared token-walking helpers the rules use (exposed for tests).
pub(crate) fn bracket_matches(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut close_of = vec![None; toks.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != lexer::TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => stack.push((t.text.chars().next().unwrap_or('('), i)),
            ")" | "]" | "}" => {
                let open = match t.text.as_str() {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                // Pop until the matching opener: tolerant of the malformed
                // nesting a lexical scan can produce.
                while let Some((c, j)) = stack.pop() {
                    if c == open {
                        close_of[j] = Some(i);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    close_of
}
