//! The five rule passes. Each is a token-stream walk; see the crate docs
//! for what the rules mean and `DESIGN.md` ("Enforced invariants") for why
//! they exist.

use crate::lexer::{Tok, TokKind};
use crate::{bracket_matches, FileClass, Rule};
use std::path::Path;

/// Shared per-file context handed to every rule.
pub(crate) struct RuleCtx<'a> {
    #[allow(dead_code)]
    pub path: &'a Path,
    pub toks: &'a [Tok],
    /// `true` for tokens inside `#[cfg(test)]` / `#[test]` items.
    pub test_mask: &'a [bool],
    #[allow(dead_code)]
    pub class: FileClass,
}

/// Mark every token that lives inside a test-only item: an item annotated
/// `#[cfg(test)]` (or `#[cfg(all(test, …))]` etc.) or `#[test]`. The rules
/// skip those regions — test code may unwrap and panic freely.
pub(crate) fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let close_of = bracket_matches(toks);
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_open = i + 1;
        let Some(attr_close) = close_of[attr_open] else {
            i += 1;
            continue;
        };
        let attr = &toks[attr_open + 1..attr_close];
        let is_test_attr = match attr.first() {
            Some(t) if t.is_ident("test") && attr.len() == 1 => true,
            Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        if !is_test_attr {
            i = attr_close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = attr_close + 1;
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            match close_of[j + 1] {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item extends to its body's closing brace, or to `;` for
        // item declarations without a body (`mod tests;`).
        let mut depth = 0i32;
        let mut end = j;
        while end < toks.len() {
            let t = &toks[end];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        end = close_of[end].unwrap_or(toks.len() - 1);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            end += 1;
        }
        for m in mask.iter_mut().take(end.min(toks.len() - 1) + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Identifiers that count as a governance poll inside a loop body. `tick`
/// and `checkpoint` are the real [`ExecContext`] API; `poll` is accepted
/// for future governed loops; `failpoint` sites imply a checkpoint in this
/// codebase (every failpoint macro-expands next to one).
const POLL_IDENTS: [&str; 4] = ["checkpoint", "tick", "poll", "failpoint"];

/// Loop-header identifiers that mark a data loop: iterating rows, morsels,
/// or cube cells. Substring match, so `n_rows`, `morsel_id`, `cells` all
/// qualify. Loops over other subjects (aggregate lanes, dimension indexes,
/// lattice sets) are bounded by query *shape*, not data volume, and are
/// out of scope by design.
const DATA_SUBJECTS: [&str; 3] = ["row", "morsel", "cell"];

/// R1: every data loop in an algorithm file must poll the checkpoint.
pub(crate) fn r1_checkpoint(ctx: &RuleCtx, push: &mut dyn FnMut(Rule, u32, String)) {
    let toks = ctx.toks;
    let close_of = bracket_matches(toks);
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let kw = &toks[i];
        let is_for = kw.is_ident("for");
        let is_while = kw.is_ident("while");
        if !is_for && !is_while {
            continue;
        }
        // Find the body `{` at header depth 0. `for` must also see `in` at
        // depth 0, or it is `impl Trait for Type` / `for<'a>`.
        let mut depth = 0i32;
        let mut saw_in = false;
        let mut body_open = None;
        let mut subjects = false;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                },
                TokKind::Ident => {
                    if depth == 0 && t.text == "in" {
                        saw_in = true;
                    }
                    let lower = t.text.to_ascii_lowercase();
                    if DATA_SUBJECTS.iter().any(|s| lower.contains(s)) {
                        subjects = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        if is_for && !saw_in {
            continue; // `impl … for …` or a higher-ranked bound
        }
        if !subjects {
            continue;
        }
        let close = close_of[open].unwrap_or(toks.len() - 1);
        let polled = toks[open + 1..close]
            .iter()
            .any(|t| t.kind == TokKind::Ident && POLL_IDENTS.contains(&t.text.as_str()));
        if !polled {
            push(
                Rule::Checkpoint,
                kw.line,
                format!(
                    "{} loop over rows/morsels/cells has no checkpoint/tick poll in its \
                     body — a cancel or deadline cannot interrupt it; poll ExecContext \
                     or annotate `cube-lint: allow(checkpoint, reason)`",
                    if is_for { "for" } else { "while" }
                ),
            );
        }
    }
}

/// Wrappers that establish panic isolation: everything lexically inside
/// their argument list is guarded.
const GUARD_IDENTS: [&str; 3] = ["guard", "guarded_init", "catch_unwind"];

/// Accumulator/UDF trait surface (the paper's Init / Iter / Iter_super /
/// Final plus merge). These run arbitrary user code for UDAs.
const GUARDED_METHODS: [&str; 5] = ["init", "iter", "iter_super", "final_value", "merge"];

/// R2: accumulator trait calls outside `crates/aggregate` must be inside a
/// guard wrapper's argument list.
pub(crate) fn r2_guard(ctx: &RuleCtx, push: &mut dyn FnMut(Rule, u32, String)) {
    let toks = ctx.toks;
    let close_of = bracket_matches(toks);
    // Token spans covered by a guard call's parens.
    let mut guarded: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].kind == TokKind::Ident
            && GUARD_IDENTS.contains(&toks[i].text.as_str())
            && toks[i + 1].is_punct('(')
        {
            if let Some(close) = close_of[i + 1] {
                guarded.push((i + 1, close));
            }
        }
    }
    let is_guarded = |idx: usize| guarded.iter().any(|&(a, b)| a < idx && idx < b);

    for i in 1..toks.len().saturating_sub(1) {
        if ctx.test_mask[i] {
            continue;
        }
        let m = &toks[i];
        if m.kind != TokKind::Ident
            || !GUARDED_METHODS.contains(&m.text.as_str())
            || !toks[i - 1].is_punct('.')
            || !toks[i + 1].is_punct('(')
        {
            continue;
        }
        // `.iter()` with no arguments is slice iteration, not the
        // accumulator's Iter; every other method matches regardless of
        // arity (`init()` *is* zero-argument).
        if m.text == "iter" && toks.get(i + 2).is_some_and(|t| t.is_punct(')')) {
            continue;
        }
        if is_guarded(i) {
            continue;
        }
        push(
            Rule::Guard,
            m.line,
            format!(
                "raw accumulator call `.{}(…)` outside a panic guard — a panicking UDA \
                 here tears down the engine instead of becoming CubeError::AggPanicked; \
                 route it through exec::guard/guarded_init or annotate \
                 `cube-lint: allow(guard, reason)`",
                m.text
            ),
        );
    }
}

/// R3 (registry side): the site names declared in `SITES`, plus the line
/// of the declaration.
pub(crate) fn r3_declared_sites(ctx: &RuleCtx) -> (Vec<(String, u32)>, Option<u32>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("SITES") {
            continue;
        }
        let mut sites = Vec::new();
        for t in &toks[i + 1..] {
            if t.is_punct(';') {
                break;
            }
            if t.kind == TokKind::Str {
                sites.push((t.text.clone(), t.line));
            }
        }
        return (sites, Some(toks[i].line));
    }
    (Vec::new(), None)
}

/// R3 (injection side): string-literal site names passed to `failpoint(…)`
/// or `faults::hit(…)` in non-test code.
pub(crate) fn r3_referenced_sites(ctx: &RuleCtx) -> Vec<(String, u32)> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(2) {
        if ctx.test_mask[i] {
            continue;
        }
        let name = &toks[i];
        if name.kind != TokKind::Ident || !toks[i + 1].is_punct('(') {
            continue;
        }
        let is_failpoint = name.text == "failpoint";
        let is_faults_hit = name.text == "hit"
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("faults");
        if !is_failpoint && !is_faults_hit {
            continue;
        }
        if let Some(arg) = toks.get(i + 2) {
            if arg.kind == TokKind::Str {
                out.push((arg.text.clone(), arg.line));
            }
        }
    }
    out
}

/// Macro names R4 bans in library code.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// R4: no `.unwrap()` / `.expect(…)` / panicking macros outside tests.
pub(crate) fn r4_panic(ctx: &RuleCtx, push: &mut dyn FnMut(Rule, u32, String)) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
        let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
        if (t.text == "unwrap" || t.text == "expect") && prev_is_dot && next_is('(') {
            push(
                Rule::Panic,
                t.line,
                format!(
                    "`.{}(…)` in library code can panic the engine — return a typed \
                     CubeError instead, or annotate \
                     `cube-lint: allow(panic, why this cannot fail)`",
                    t.text
                ),
            );
        } else if PANIC_MACROS.contains(&t.text.as_str()) && next_is('!') {
            push(
                Rule::Panic,
                t.line,
                format!(
                    "`{}!` in library code tears down the caller — return a typed \
                     CubeError instead, or annotate \
                     `cube-lint: allow(panic, why this is unreachable)`",
                    t.text
                ),
            );
        }
    }
}

/// R5: a `match` whose patterns destructure `Value` must not have a
/// top-level `_` arm: adding a `Value` variant (say, an interval type)
/// must fail to compile everywhere its semantics matter, not silently fall
/// into the wildcard and mis-bucket ALL vs NULL (§3.4 discriminability).
pub(crate) fn r5_wildcard(ctx: &RuleCtx, push: &mut dyn FnMut(Rule, u32, String)) {
    let toks = ctx.toks;
    let close_of = bracket_matches(toks);
    for i in 0..toks.len() {
        if ctx.test_mask[i] || !toks[i].is_ident("match") {
            continue;
        }
        // Scrutinee runs to the first `{` at depth 0.
        let mut depth = 0i32;
        let mut body_open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
        }
        let Some(open) = body_open else { continue };
        let Some(close) = close_of[open] else {
            continue;
        };

        let mut value_pattern = false;
        let mut wildcard_lines: Vec<u32> = Vec::new();
        let mut p = open + 1;
        while p < close {
            // Pattern span: up to `=>` at depth 0 (guard included).
            let mut depth = 0i32;
            let mut q = p;
            while q + 1 < close {
                let t = &toks[q];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=" if depth == 0 && toks[q + 1].is_punct('>') => break,
                        _ => {}
                    }
                }
                q += 1;
            }
            if q + 1 >= close {
                break;
            }
            let pattern = &toks[p..q];
            // `Value::Int(…)` paths, or — after `use Value::*` — the bare
            // `All` token, which only the cube's value domain defines.
            if pattern
                .windows(3)
                .any(|w| w[0].is_ident("Value") && w[1].is_punct(':') && w[2].is_punct(':'))
                || pattern.iter().any(|t| t.is_ident("All"))
            {
                value_pattern = true;
            }
            if let Some(line) = wildcard_in_pattern(pattern) {
                wildcard_lines.push(line);
            }
            // Arm body: a braced block (plus optional comma) or an
            // expression up to the next depth-0 comma.
            let mut r = q + 2;
            if r < close && toks[r].is_punct('{') {
                r = close_of[r].unwrap_or(close);
                r += 1;
                if r < close && toks[r].is_punct(',') {
                    r += 1;
                }
            } else {
                let mut depth = 0i32;
                while r < close {
                    let t = &toks[r];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => {
                                r += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    r += 1;
                }
            }
            p = r;
        }
        if value_pattern {
            for line in wildcard_lines {
                push(
                    Rule::Wildcard,
                    line,
                    "wildcard `_` arm in a match over Value — a new Value variant would \
                     silently fall through here instead of failing to compile; list the \
                     variants or annotate `cube-lint: allow(wildcard, reason)`"
                        .into(),
                );
            }
        }
    }
}

/// Does this arm pattern contain a *top-level* lone `_` (possibly one of
/// several `|` alternatives, possibly guarded)? Returns its line.
fn wildcard_in_pattern(pattern: &[Tok]) -> Option<u32> {
    // Truncate at a depth-0 `if` guard.
    let mut depth = 0i32;
    let mut end = pattern.len();
    for (i, t) in pattern.iter().enumerate() {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            },
            TokKind::Ident if depth == 0 && t.text == "if" => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    // Split into `|` alternatives at depth 0.
    let mut depth = 0i32;
    let mut alt_start = 0usize;
    let mut alts: Vec<(usize, usize)> = Vec::new();
    for (i, t) in pattern[..end].iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "|" if depth == 0 => {
                    alts.push((alt_start, i));
                    alt_start = i + 1;
                }
                _ => {}
            }
        }
    }
    alts.push((alt_start, end));
    for (a, b) in alts {
        let alt = &pattern[a..b];
        if alt.len() == 1 && alt[0].is_ident("_") {
            return Some(alt[0].line);
        }
    }
    None
}
