// R9 fixture: catalog version commits must be followed, in the same
// function, by the cache call that propagates them. Lexical test data
// for cube_lint — never compiled.

impl Session {
    // FIRE: a version commit with no propagation anywhere after it.
    pub fn commit_silent(&self, t: &str, v: u64, table: Table) -> SqlResult<()> {
        self.catalog.with_write(|c| c.replace_if_version(t, v, table))?;
        Ok(())
    }

    // PASS: the delta is absorbed into the cache after the commit.
    pub fn commit_absorb(&self, t: &str, v: u64, table: Table, delta: &Delta) -> SqlResult<()> {
        let swapped = self.catalog.with_write(|c| c.replace_if_version(t, v, table))?;
        if let Some(nv) = swapped {
            self.cache.apply_delta(t, nv, delta);
        }
        Ok(())
    }

    // PASS: invalidation also counts as propagation.
    pub fn commit_invalidate(&self, t: &str, table: Table) -> SqlResult<()> {
        self.catalog.with_write(|c| c.update_table(t, table))?;
        self.cache.invalidate_table(t);
        Ok(())
    }

    // FIRE: propagation *before* the commit does not pair with it.
    pub fn propagate_first(&self, t: &str, table: Table) -> SqlResult<()> {
        self.cache.invalidate_table(t);
        self.catalog.with_write(|c| c.update_table(t, table))?;
        Ok(())
    }

    // ALLOW: a reasoned suppression when the caller owns propagation.
    pub fn allowed_commit(&self, t: &str, table: Table) -> SqlResult<()> {
        // cube-lint: allow(commit, fixture: the caller invalidates once after its batch loop)
        self.catalog.with_write(|c| c.update_table(t, table))?;
        Ok(())
    }

    // PASS (edge): registering a brand-new table is not a version
    // commit — there is nothing cached to invalidate yet.
    pub fn register(&self, t: &str, table: Table) -> SqlResult<()> {
        self.catalog.with_write(|c| c.register_table(t, table))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // PASS (edge): test code is exempt.
    #[test]
    fn commits_in_tests_are_fine() {
        session.catalog.with_write(|c| c.replace_if_version("T", 1, table));
    }
}
