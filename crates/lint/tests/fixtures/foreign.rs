// R7 fixture: foreign (UDA/closure) code under engine locks. Lexical
// test data for cube_lint — never compiled.

impl Cube {
    // FIRE: a guard wrapper runs while a shard read-lock is held.
    pub fn final_under_shard(&self) -> Option<Value> {
        let shard = self.shards[0].read();
        guard("MAX", || shard.cell.final_value()).ok()
    }

    // FIRE: a raw accumulator callback under the gate.
    pub fn merge_under_gate(&self, st: &[Value]) {
        let _g = self.gate.write();
        self.acc.merge(st);
    }

    // PASS: guarded code with no lock held.
    pub fn guarded_unlocked(&self) {
        guard("SUM", || self.acc.final_value());
    }

    // PASS (edge): foreign code under the cache mutex is out of R7's
    // scope — absorb-under-cache-lock is the documented exception.
    pub fn absorb_under_cache(&self) {
        let mut entries = self.entries.lock();
        guard("cache::absorb", || entries.view.absorb());
    }

    // FIRE (transitive): the helper reaches a guard; calling it under a
    // shard lock is flagged at the call site.
    pub fn stage_under_shard(&self) {
        let shard = self.shards[0].write();
        self.helper_that_guards();
        consume(shard);
    }

    fn helper_that_guards(&self) {
        guard("SUM", || self.acc.final_value());
    }

    // ALLOW: an annotated staging call is accepted.
    pub fn allowed_stage(&self) {
        let shard = self.shards[0].write();
        // cube-lint: allow(foreign, fixture demonstrating the two-phase staging suppression)
        self.helper_that_guards();
        consume(shard);
    }

    // PASS (edge): zero-argument `.iter()` under a lock is slice
    // iteration, not the accumulator callback.
    pub fn slice_iter_under_lock(&self) {
        let shard = self.shards[0].read();
        for x in shard.rows.iter() {
            consume(x);
        }
    }
}
