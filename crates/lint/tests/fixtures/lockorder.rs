// R6 fixture: shard-order provability, hierarchy inversions, and
// re-acquisition. Lexical test data for cube_lint — never compiled.

impl Cube {
    // FIRE: guards collected over an index source with no order proof
    // (HashMap keys iterate in arbitrary order).
    pub fn collect_unproven(&self, by_shard: HashMap<usize, Vec<Work>>) {
        let mut by = HashMap::new();
        by.extend(by_shard);
        let ids: Vec<usize> = by.keys().copied().collect();
        let guards: Vec<Guard> = ids.iter().map(|&s| self.shards[s].write()).collect();
        consume(guards);
    }

    // PASS: the BTreeMap-keys chain proves ascending order.
    pub fn collect_btree(&self) {
        let mut by_shard: BTreeMap<usize, Vec<Work>> = BTreeMap::new();
        by_shard.entry(0).or_default();
        let ids: Vec<usize> = by_shard.keys().copied().collect();
        let guards: Vec<Guard> = ids.iter().map(|&s| self.shards[s].write()).collect();
        consume(guards);
    }

    // PASS: a range is ascending by construction.
    pub fn collect_range(&self) {
        let guards: Vec<Guard> = (0..SHARD_COUNT).map(|s| self.shards[s].write()).collect();
        consume(guards);
    }

    // PASS: iterating the shard vector itself is index order.
    pub fn collect_all(&self) {
        let guards: Vec<Guard> = self.shards.iter().map(|s| s.read()).collect();
        consume(guards);
    }

    // PASS (edge): an explicitly sorted source is ascending.
    pub fn collect_sorted(&self, mut ids: Vec<usize>) {
        ids.sort_unstable();
        let guards: Vec<Guard> = ids.iter().map(|&s| self.shards[s].write()).collect();
        consume(guards);
    }

    // FIRE: two shard locks held together with descending literals.
    pub fn literal_descending(&self) {
        let hi = self.shards[3].write();
        let lo = self.shards[1].write();
        consume((hi, lo));
    }

    // PASS: ascending literal pair.
    pub fn literal_ascending(&self) {
        let lo = self.shards[1].write();
        let hi = self.shards[3].write();
        consume((lo, hi));
    }

    // PASS (edge): a single computed-index lock holds one shard at a
    // time — nothing to order.
    pub fn single_computed(&self, si: usize, key: &Row) -> Option<Cell> {
        let shard = self.shards[shard_of(si, key)].read();
        shard.get(key)
    }

    // FIRE: catalog under shard inverts the documented hierarchy.
    pub fn inversion(&self) {
        let shard = self.shards[0].write();
        let cat = self.catalog.write();
        consume((shard, cat));
    }

    // FIRE: the meta lock re-acquired while already held.
    pub fn reentrant(&self) {
        let a = self.meta.write();
        let b = self.meta.read();
        consume((a, b));
    }

    // ALLOW: an annotated inversion is accepted (meta → cache, a
    // kind-pair no other function in this fixture uses, so the edge's
    // single witness is the annotated line).
    pub fn allowed_inversion(&self) {
        let meta = self.meta.write();
        // cube-lint: allow(lockorder, fixture demonstrating a reasoned suppression)
        let stats = self.entries.lock();
        consume((meta, stats));
    }

    // PASS (edge): the hoisted-guard if/else idiom binds alternatives,
    // not nested acquisitions.
    pub fn hoisted_alternative(&self, exclusive: bool) {
        let _excl;
        let _shared;
        if exclusive {
            _excl = Some(self.gate.write());
        } else {
            _shared = Some(self.gate.read());
        }
        let meta = self.meta.read();
        consume(meta);
    }
}

#[cfg(test)]
mod tests {
    // PASS (edge): test code is exempt even when it misorders locks.
    #[test]
    fn test_only_descending() {
        let hi = cube.shards[9].write();
        let lo = cube.shards[2].write();
        consume((hi, lo));
    }
}
