// Mini-workspace fixture: injects a site the registry never declared.
// Exactly one R3 finding, at the failpoint line.

pub fn load() {
    failpoint("rogue::site");
}
