// Mini-workspace fixture: an algorithm file whose scan loop forgot its
// checkpoint poll. Exactly one R1 finding, at the loop line.

pub fn scan(rows: &[u64]) -> u64 {
    let mut total = 0;
    for row in rows {
        total += row;
    }
    total
}
