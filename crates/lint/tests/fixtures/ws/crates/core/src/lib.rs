// Mini-workspace fixture: references the one legitimate fault site and
// carries exactly one R4 finding (the unwrap).

pub mod algorithm;

pub fn scan_chunk(rows: &[u64], limit: Option<usize>) -> u64 {
    failpoint("core::scan");
    let n = limit.unwrap();
    rows.iter().take(n).sum()
}
