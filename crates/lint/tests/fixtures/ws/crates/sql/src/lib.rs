// Mini-workspace fixture: a raw accumulator call outside crates/aggregate.
// Exactly one R2 finding, at the `.iter(` line.

pub fn finish(acc: &mut dyn Accumulator, v: &Value) -> Value {
    acc.iter(v);
    exec::guard("sum", || acc.final_value())
}
