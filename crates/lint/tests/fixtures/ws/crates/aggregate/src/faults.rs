// Mini-workspace fixture registry. "core::scan" is injected in
// core/src/lib.rs; "ghost::site" is declared but never injected, so R3
// reports an orphan anchored at its declaration line.

pub const SITES: &[&str] = &[
    "core::scan",
    "ghost::site",
];
