// R4 fixture — panic surfaces in non-test library code.

pub fn fire_unwrap(x: Option<u64>) -> u64 {
    x.unwrap() // FIRE: panic
}

pub fn fire_expect(x: Option<u64>) -> u64 {
    x.expect("present") // FIRE: panic
}

pub fn fire_macros(x: u64) {
    if x > 3 {
        panic!("boom"); // FIRE: panic
    }
    match x {
        0 => todo!(),        // FIRE: panic
        1 => unimplemented!(), // FIRE: panic
        _ => unreachable!(), // FIRE: panic
    }
}

pub fn ok_in_strings_and_comments() -> &'static str {
    // a comment mentioning panic!("nope") and x.unwrap() is not code
    "panic!(unwrap()) inside a string is data, not code"
}

pub fn ok_raw_string() -> &'static str {
    r#"x.expect("still a string")"#
}

pub fn ok_fallible(x: Option<u64>) -> u64 {
    x.unwrap_or(0) + Some(1).unwrap_or_else(|| 2)
}

pub fn ok_annotated(x: Option<u64>) -> u64 {
    // cube-lint: allow(panic, slot was filled two lines above)
    x.unwrap()
}

pub fn ok_annotation_same_line(x: Option<u64>) -> u64 {
    x.unwrap() // cube-lint: allow(panic, checked by caller)
}

pub fn fire_malformed_annotation(x: Option<u64>) -> u64 {
    // cube-lint: allow(panic)
    x.unwrap() // the annotation above is missing its reason: two findings
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_free() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        Option::<u64>::None.expect("tests may panic");
    }
}
