// Mini-workspace fixture (ws2): clean except for the declared fault
// site it injects.

pub fn ingest(rows: &[u64]) -> u64 {
    failpoint("demo::site");
    rows.iter().sum()
}
