// Mini-workspace fixture (ws2): a clean crate contributes nothing.

pub fn add(a: u64, b: u64) -> u64 {
    a + b
}
