// Mini-workspace fixture (ws2): a clean crate contributes nothing.

pub fn rows() -> Vec<u64> {
    vec![1, 2, 3]
}
