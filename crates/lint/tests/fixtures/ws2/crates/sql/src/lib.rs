// Mini-workspace fixture (ws2): a seeded inter-procedural lock cycle.
//
// `alpha` holds `journal` and calls `beta`; `beta` holds `wal` and
// calls `gamma`; `gamma` takes `journal` again. The analyzer should
// report exactly two lockorder findings:
//   - `journal` transitively re-acquired (alpha → beta → gamma),
//     anchored at alpha's call into beta;
//   - the journal → wal → journal cycle, anchored at beta's call into
//     gamma (the witness of the back-edge wal → journal).

pub struct Journal {
    journal: Mutex<Vec<u64>>,
    wal: Mutex<Vec<u64>>,
}

impl Journal {
    pub fn alpha(&self) -> usize {
        let j = self.journal.lock();
        let staged = self.beta();
        j.len() + staged
    }

    pub fn beta(&self) -> usize {
        let w = self.wal.lock();
        let flushed = self.gamma();
        w.len() + flushed
    }

    pub fn gamma(&self) -> usize {
        let j = self.journal.lock();
        j.len()
    }
}
