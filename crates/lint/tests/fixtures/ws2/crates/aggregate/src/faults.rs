// Mini-workspace fixture registry (ws2): one site, injected exactly
// once in core/src/lib.rs, so R3 stays quiet.

pub const SITES: &[&str] = &[
    "demo::site",
];
