// R8 fixture: atomic ordering discipline. Lexical test data for
// cube_lint — never compiled.

impl Server {
    // FIRE: a relaxed store on the publish path.
    pub fn publish_version(&self) {
        self.version.store(1, Ordering::Relaxed);
    }

    // PASS: release ordering publishes correctly.
    pub fn publish_version_release(&self) {
        self.version.store(1, Ordering::Release);
    }

    // PASS: acquire load pairs with the release store.
    pub fn read_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    // ALLOW: a reasoned suppression for a monotone counter.
    pub fn bump_counter(&self) {
        // cube-lint: allow(atomic, monotone counter with no data published through it)
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    // FIRE: the fully-qualified path is the same violation.
    pub fn shutdown(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    // PASS (edge): test code may relax freely.
    #[test]
    fn relaxed_in_tests_is_fine() {
        COUNTER.load(Ordering::Relaxed);
    }
}
