// R5 fixture — wildcard arms over Value in semantic code.

pub fn fire_plain(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None, // FIRE: wildcard
    }
}

pub fn fire_after_use_glob(v: &Value) -> u8 {
    use Value::*;
    match v {
        All => 5,
        Null => 0,
        _ => 1, // FIRE: wildcard (bare `All` marks this as a Value match)
    }
}

pub fn fire_alternative_and_guard(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Null | _ => false, // FIRE: wildcard in a `|` alternative
    }
}

pub fn fire_guarded_wildcard(v: &Value, strict: bool) -> bool {
    match v {
        Value::Bool(b) => *b,
        _ if strict => false, // FIRE: wildcard behind a guard is still a wildcard
        _ => true,            // FIRE: wildcard
    }
}

pub fn ok_exhaustive(v: &Value) -> bool {
    match v {
        Value::Null | Value::All => false,
        Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Str(_) | Value::Date(_) => true,
    }
}

pub fn ok_nested_underscore_is_not_top_level(v: &Value) -> bool {
    match v {
        Value::Int(_) => true,
        Value::Null | Value::All | Value::Bool(_) | Value::Float(_) | Value::Str(_)
        | Value::Date(_) => false,
    }
}

pub fn ok_not_a_value_match(x: Option<u64>) -> u64 {
    match x {
        Some(n) => n,
        _ => 0,
    }
}

pub fn ok_annotated(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        // cube-lint: allow(wildcard, numeric coercion defers to as_f64 which is exhaustive)
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn wildcards_in_tests_are_free() {
        match Value::Int(1) {
            Value::Int(_) => {}
            _ => panic!("not an int"),
        }
    }
}
