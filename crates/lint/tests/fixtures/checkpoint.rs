// R1 fixture — checked with FileClass { algorithm: true }. This file is
// test data for cube_lint, never compiled; names only need to lex.

pub fn fire_for_over_rows(rows: &[u64]) {
    for row in rows {
        consume(row); // FIRE: checkpoint (line 5's loop has no poll)
    }
}

pub fn fire_while_over_rows(n_rows: usize) {
    let mut base = 0;
    while base < n_rows {
        base += 1; // FIRE: checkpoint
    }
}

pub fn fire_inner_nested(morsels: &[Vec<u64>], ctx: &Ctx) {
    for morsel in morsels {
        ctx.checkpoint(); // outer loop polls: ok
        for cell in morsel {
            consume(cell); // FIRE: inner loop never polls
        }
    }
}

pub fn ok_ticked(rows: &[u64], ctx: &Ctx) {
    for (i, row) in rows.iter().enumerate() {
        ctx.tick(i);
        consume(row);
    }
}

pub fn ok_failpoint(cells: &[u64]) {
    for cell in cells {
        failpoint("array::sweep");
        consume(cell);
    }
}

pub fn ok_annotated(cells: &[u64]) {
    // cube-lint: allow(checkpoint, bounded by the lane count; caller ticks per cell)
    for cell in cells {
        consume(cell);
    }
}

pub fn ok_not_a_data_loop(xs: &[u64]) {
    for x in xs {
        consume(x);
    }
}

// `for` in a trait position is not a loop, even though "Rows" contains
// the substring "row".
impl Iterator for Rows {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn loops_in_tests_are_free() {
        for row in make_rows() {
            consume(row);
        }
    }
}
