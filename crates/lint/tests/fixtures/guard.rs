// R2 fixture — checked with FileClass { aggregate_crate: false }. Raw
// accumulator lifecycle calls outside crates/aggregate must be guarded.

pub fn fire_raw_calls(acc: &mut dyn Accumulator, f: &dyn AggregateFunction, v: &Value) {
    acc.iter(v); // FIRE: guard
    let a = f.init(); // FIRE: guard
    acc.merge(&[]); // FIRE: guard
    let x = acc.final_value(); // FIRE: guard
    acc.iter_super(&[]); // FIRE: guard
}

pub fn ok_wrapped(acc: &mut dyn Accumulator, f: &dyn AggregateFunction, v: &Value) {
    exec::guard(name, || acc.iter(v));
    let accs = exec::guarded_init(aggs);
    let caught = catch_unwind(AssertUnwindSafe(|| f.init().final_value()));
}

pub fn ok_slice_iter_is_not_an_accumulator(xs: &[u64]) {
    for x in xs.iter() {
        consume(x);
    }
}

pub fn ok_annotated(kernel: &Kernel, cell: &mut KernelCell) {
    // cube-lint: allow(guard, engine-owned POD kernel, runs no user code)
    kernel.merge(cell, &src, false);
}

#[cfg(test)]
mod tests {
    #[test]
    fn raw_calls_in_tests_are_free() {
        let mut acc = SumAcc::default();
        acc.iter(&Value::Int(1));
        assert_eq!(acc.final_value(), Value::Int(1));
    }
}
