//! Self-test for cube_lint: every rule is exercised against the fixture
//! sources under `tests/fixtures/` (fire cases, allow cases, and edge
//! cases), the cross-file R3 check against synthetic registries, and the
//! CLI end-to-end against a deliberately broken mini-workspace in
//! `tests/fixtures/ws/` — plus a run against the real workspace, which
//! must be clean.
//!
//! Fixture `.rs` files are data, not code: they are never compiled, so
//! they can hold violations the real workspace is forbidden to contain.

use cube_lint::{
    check_fault_sites, check_lock_discipline, lint_source, render_json, FileClass, FileReport, Rule,
};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(name: &str, class: FileClass) -> FileReport {
    let path = fixture_dir().join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    lint_source(&path, &src, class)
}

/// The (rule, line) pairs of a report, sorted — the shape every fixture
/// asserts against.
fn rule_lines(report: &FileReport) -> Vec<(Rule, u32)> {
    let mut v: Vec<(Rule, u32)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
    v.sort();
    v
}

#[test]
fn r1_checkpoint_fixture() {
    let report = lint_fixture(
        "checkpoint.rs",
        FileClass {
            algorithm: true,
            ..FileClass::default()
        },
    );
    // Fires: the bare `for row` loop, the `while … n_rows` loop, and the
    // inner loop of the nested pair (the outer one polls). Everything
    // else — ticked, failpointed, annotated, non-data loops, `impl
    // Iterator for Rows`, and the `#[cfg(test)]` module — stays silent.
    assert_eq!(
        rule_lines(&report),
        vec![
            (Rule::Checkpoint, 5),
            (Rule::Checkpoint, 12),
            (Rule::Checkpoint, 20),
        ],
        "unexpected findings: {:#?}",
        report.findings
    );
}

#[test]
fn r1_is_scoped_to_algorithm_files() {
    // The same source with `algorithm: false` produces nothing: R1 only
    // applies to `crates/core/src/algorithm/` and `groupby.rs`.
    let report = lint_fixture("checkpoint.rs", FileClass::default());
    assert_eq!(rule_lines(&report), vec![], "{:#?}", report.findings);
}

#[test]
fn r2_guard_fixture() {
    let report = lint_fixture("guard.rs", FileClass::default());
    // One fire per raw lifecycle call; guarded calls, zero-arg slice
    // `.iter()`, the annotated kernel merge, and test code stay silent.
    assert_eq!(
        rule_lines(&report),
        vec![
            (Rule::Guard, 5),
            (Rule::Guard, 6),
            (Rule::Guard, 7),
            (Rule::Guard, 8),
            (Rule::Guard, 9),
        ],
        "unexpected findings: {:#?}",
        report.findings
    );
}

#[test]
fn r2_is_skipped_inside_the_aggregate_crate() {
    let report = lint_fixture(
        "guard.rs",
        FileClass {
            aggregate_crate: true,
            ..FileClass::default()
        },
    );
    assert_eq!(rule_lines(&report), vec![], "{:#?}", report.findings);
}

#[test]
fn r4_panic_fixture() {
    let report = lint_fixture("panic.rs", FileClass::default());
    // Six panic surfaces fire, plus the malformed annotation: it is
    // itself a finding (line 45) AND fails to suppress the unwrap below
    // it (line 46). Strings, comments, unwrap_or/unwrap_or_else, the two
    // well-formed annotations, and the test module stay silent.
    assert_eq!(
        rule_lines(&report),
        vec![
            (Rule::Panic, 4),
            (Rule::Panic, 8),
            (Rule::Panic, 13),
            (Rule::Panic, 16),
            (Rule::Panic, 17),
            (Rule::Panic, 18),
            (Rule::Panic, 45),
            (Rule::Panic, 46),
        ],
        "unexpected findings: {:#?}",
        report.findings
    );
    let malformed = report
        .findings
        .iter()
        .find(|f| f.line == 45)
        .expect("malformed-annotation finding");
    assert!(
        malformed.message.contains("missing its reason"),
        "got: {}",
        malformed.message
    );
}

#[test]
fn r5_wildcard_fixture() {
    let report = lint_fixture("wildcard.rs", FileClass::default());
    // Fires: the plain `_`, the `_` in a `use Value::*` match (bare `All`
    // marks the domain), the `_` inside a `|` alternative, and both the
    // guarded and unguarded wildcard arms. Exhaustive matches, nested
    // `Value::Int(_)` binders, non-Value matches, the annotated arm, and
    // test code stay silent.
    assert_eq!(
        rule_lines(&report),
        vec![
            (Rule::Wildcard, 7),
            (Rule::Wildcard, 16),
            (Rule::Wildcard, 23),
            (Rule::Wildcard, 30),
            (Rule::Wildcard, 31),
        ],
        "unexpected findings: {:#?}",
        report.findings
    );
}

/// The (rule, line) pairs the cross-procedural pass produces for one
/// fixture, analyzed in isolation.
fn discipline_lines(report: &FileReport) -> Vec<(Rule, u32)> {
    let mut v: Vec<(Rule, u32)> = check_lock_discipline(&[report])
        .iter()
        .map(|f| (f.rule, f.line))
        .collect();
    v.sort();
    v
}

/// Per-file findings of one rule only (R8/R9 fixtures also trip other
/// per-file rules by construction; those are asserted elsewhere).
fn rule_lines_of(report: &FileReport, rule: Rule) -> Vec<(Rule, u32)> {
    let mut v: Vec<(Rule, u32)> = report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.rule, f.line))
        .collect();
    v.sort();
    v
}

#[test]
fn r6_lockorder_fixture() {
    let report = lint_fixture("lockorder.rs", FileClass::default());
    let lockorder: Vec<(Rule, u32)> = discipline_lines(&report)
        .into_iter()
        .filter(|(r, _)| *r == Rule::LockOrder)
        .collect();
    // Fires: the unprovable HashMap-keyed collect, the descending
    // literal pair, the catalog-under-shard inversion, and the meta
    // re-acquisition. The BTreeMap/range/iter/sorted proofs, the single
    // computed-index lock, the annotated inversion, the hoisted if/else
    // alternative, and the test module stay silent.
    assert_eq!(
        lockorder,
        vec![
            (Rule::LockOrder, 11),
            (Rule::LockOrder, 46),
            (Rule::LockOrder, 67),
            (Rule::LockOrder, 74),
        ],
        "unexpected findings: {:#?}",
        check_lock_discipline(&[&report])
    );
}

#[test]
fn r7_foreign_fixture() {
    let report = lint_fixture("foreign.rs", FileClass::default());
    let foreign: Vec<(Rule, u32)> = discipline_lines(&report)
        .into_iter()
        .filter(|(r, _)| *r == Rule::Foreign)
        .collect();
    // Fires: the guard wrapper under a shard read-lock, the raw merge
    // under the gate, and the transitive reach through the helper. The
    // unlocked guard, the cache-mutex absorb, the annotated call, and
    // zero-arg slice `.iter()` stay silent.
    assert_eq!(
        foreign,
        vec![(Rule::Foreign, 8), (Rule::Foreign, 14), (Rule::Foreign, 33)],
        "unexpected findings: {:#?}",
        check_lock_discipline(&[&report])
    );
}

#[test]
fn r8_atomic_fixture() {
    let report = lint_fixture("atomic.rs", FileClass::default());
    // Fires: the relaxed store on the publish path and the
    // fully-qualified relaxed shutdown store. Acquire/Release uses, the
    // annotated monotone counter, and test code stay silent.
    assert_eq!(
        rule_lines_of(&report, Rule::Atomic),
        vec![(Rule::Atomic, 7), (Rule::Atomic, 28)],
        "unexpected findings: {:#?}",
        report.findings
    );
}

#[test]
fn r9_commit_fixture() {
    let report = lint_fixture("commit.rs", FileClass::default());
    // Fires: the silent commit and the propagate-*before*-commit. The
    // absorb and invalidate pairings, the annotated commit, plain table
    // registration, and test code stay silent.
    assert_eq!(
        rule_lines_of(&report, Rule::Commit),
        vec![(Rule::Commit, 8), (Rule::Commit, 31)],
        "unexpected findings: {:#?}",
        report.findings
    );
}

#[test]
fn r9_is_skipped_in_catalog_and_cache() {
    // The same source under a catalog.rs / cache.rs path is the
    // mechanism, not a caller: adjacency does not apply.
    let src = std::fs::read_to_string(fixture_dir().join("commit.rs")).unwrap();
    for name in ["catalog.rs", "cache.rs"] {
        let report = lint_source(Path::new(name), &src, FileClass::default());
        assert_eq!(
            rule_lines_of(&report, Rule::Commit),
            vec![],
            "{name}: {:#?}",
            report.findings
        );
    }
}

#[test]
fn r3_registry_extraction() {
    let path = fixture_dir().join("ws/crates/aggregate/src/faults.rs");
    let src = std::fs::read_to_string(&path).unwrap();
    let report = lint_source(
        &path,
        &src,
        FileClass {
            aggregate_crate: true,
            faults_registry: true,
            ..FileClass::default()
        },
    );
    assert_eq!(
        report.declared_sites,
        vec![
            ("core::scan".to_string(), 6),
            ("ghost::site".to_string(), 7)
        ]
    );
    assert_eq!(report.sites_decl_line, Some(5));
    // The registry file itself is clean of per-file findings.
    assert_eq!(rule_lines(&report), vec![]);
}

#[test]
fn r3_cross_file_checks() {
    let reg = PathBuf::from("faults.rs");
    let site = |n: &str, l: u32| (n.to_string(), l);
    let reference = |f: &str, n: &str, l: u32| (PathBuf::from(f), n.to_string(), l);

    // In sync: no findings.
    let clean = check_fault_sites(
        &reg,
        &[site("a", 3), site("b", 4)],
        Some(2),
        &[reference("x.rs", "a", 9), reference("y.rs", "b", 11)],
    );
    assert_eq!(clean, vec![], "in-sync registry must be clean");

    // Duplicate declaration: flagged at the second occurrence.
    let dup = check_fault_sites(
        &reg,
        &[site("a", 3), site("a", 5)],
        Some(2),
        &[reference("x.rs", "a", 9)],
    );
    assert_eq!(dup.len(), 1, "{dup:#?}");
    assert_eq!((dup[0].rule, dup[0].line), (Rule::Faults, 5));
    assert!(dup[0].message.contains("more than once"));

    // Orphan (declared, never injected) and unregistered (injected,
    // never declared) are both findings, each anchored at its own site.
    let drift = check_fault_sites(&reg, &[site("a", 3)], Some(2), &[reference("x.rs", "b", 9)]);
    let mut lines: Vec<(Rule, u32)> = drift.iter().map(|f| (f.rule, f.line)).collect();
    lines.sort();
    assert_eq!(
        lines,
        vec![(Rule::Faults, 3), (Rule::Faults, 9)],
        "{drift:#?}"
    );
    assert!(drift.iter().any(|f| f.message.contains("not declared")));
    assert!(drift.iter().any(|f| f.message.contains("no failpoint")));

    // No SITES declaration at all is a single hard finding.
    let missing = check_fault_sites(&reg, &[], None, &[reference("x.rs", "a", 9)]);
    assert_eq!(missing.len(), 1, "{missing:#?}");
    assert!(missing[0].message.contains("no `SITES` declaration"));
}

#[test]
fn render_json_escapes_and_empty() {
    assert_eq!(render_json(&[]), "[]");
    let report = lint_fixture("panic.rs", FileClass::default());
    let json = render_json(&report.findings);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains(r#""rule":"panic""#));
    assert!(json.contains(r#""line":4"#));
    // Messages quote code with backticks, not raw quotes, but the file
    // path must round-trip; no unescaped control characters allowed.
    assert!(!json.contains('\n'));
}

// ---------------------------------------------------------------------
// CLI end-to-end: the compiled cube_lint binary against the mini
// workspace (broken on purpose) and against the real workspace (clean).
// ---------------------------------------------------------------------

fn run_lint(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cube_lint"))
        .args(args)
        .output()
        .expect("spawn cube_lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_mini_workspace_reports_every_rule_and_exits_nonzero() {
    let ws = fixture_dir().join("ws");
    let ws_arg = ws.to_string_lossy().into_owned();
    let (code, stdout, stderr) = run_lint(&["--root", &ws_arg, "--json"]);
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");

    // Exactly five findings, sorted by (file, line): the orphaned
    // registry entry, the unpolled scan loop, the unwrap, the raw
    // accumulator call, and the unregistered failpoint.
    let expected = [
        (
            r"crates/aggregate/src/faults.rs",
            7,
            "faults",
            "ghost::site",
        ),
        (
            r"crates/core/src/algorithm/bad.rs",
            6,
            "checkpoint",
            "no checkpoint",
        ),
        (r"crates/core/src/lib.rs", 8, "panic", "unwrap"),
        (r"crates/sql/src/lib.rs", 5, "guard", "iter"),
        (r"crates/warehouse/src/lib.rs", 5, "faults", "rogue::site"),
    ];
    let objects: Vec<&str> = stdout
        .trim()
        .trim_matches(['[', ']'])
        .split("},{")
        .collect();
    assert_eq!(objects.len(), expected.len(), "json: {stdout}");
    for (obj, (file, line, rule, needle)) in objects.iter().zip(expected) {
        assert!(obj.contains(file), "expected {file} in: {obj}");
        assert!(
            obj.contains(&format!(r#""line":{line}"#)),
            "expected line {line} in: {obj}"
        );
        assert!(
            obj.contains(&format!(r#""rule":"{rule}""#)),
            "expected rule {rule} in: {obj}"
        );
        assert!(obj.contains(needle), "expected `{needle}` in: {obj}");
    }

    // Human-readable mode: same findings as `file:line: [rule]` lines
    // plus a count on stderr.
    let (code, stdout, stderr) = run_lint(&["--root", &ws_arg]);
    assert_eq!(code, Some(1));
    for (file, line, rule, _) in expected {
        let needle = format!("{file}:{line}: [{rule}]");
        assert!(stdout.contains(&needle), "expected `{needle}` in: {stdout}");
    }
    assert!(stderr.contains("5 finding(s)"), "stderr: {stderr}");
}

#[test]
fn cli_ws2_reports_the_seeded_lock_cycle() {
    let ws = fixture_dir().join("ws2");
    let ws_arg = ws.to_string_lossy().into_owned();
    let (code, stdout, stderr) = run_lint(&["--root", &ws_arg]);
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");

    // Exactly the two seeded findings: the transitive journal
    // re-acquisition (alpha → beta → gamma) at alpha's call into beta,
    // and the journal → wal → journal cycle at beta's call into gamma.
    let expected = [
        (r"crates/sql/src/lib.rs", 19, "lockorder", "re-acquired"),
        (r"crates/sql/src/lib.rs", 25, "lockorder", "cycle"),
    ];
    for (file, line, rule, needle) in expected {
        let prefix = format!("{file}:{line}: [{rule}]");
        let hit = stdout
            .lines()
            .find(|l| l.contains(&prefix))
            .unwrap_or_else(|| panic!("expected `{prefix}` in: {stdout}"));
        assert!(hit.contains(needle), "expected `{needle}` in: {hit}");
    }
    assert!(stderr.contains("2 finding(s)"), "stderr: {stderr}");
}

#[test]
fn cli_json_to_file_keeps_human_output() {
    let ws = fixture_dir().join("ws2");
    let ws_arg = ws.to_string_lossy().into_owned();
    let out = std::env::temp_dir().join(format!("cube-lint-test-{}.json", std::process::id()));
    let out_arg = out.to_string_lossy().into_owned();

    let (code, stdout, stderr) = run_lint(&["--root", &ws_arg, "--json", &out_arg]);
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");
    // The human diagnostics still go to stdout…
    assert!(stdout.contains("[lockorder]"), "stdout: {stdout}");
    // …while the file holds the machine-readable report.
    let json = std::fs::read_to_string(&out).expect("json report file");
    std::fs::remove_file(&out).ok();
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains(r#""rule":"lockorder""#), "json: {json}");
    assert!(json.contains(r#""line":19"#), "json: {json}");
    assert!(json.contains(r#""line":25"#), "json: {json}");
}

#[test]
fn cli_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root_arg = root.to_string_lossy().into_owned();
    let (code, stdout, stderr) = run_lint(&["--root", &root_arg]);
    assert_eq!(
        code,
        Some(0),
        "the real workspace must lint clean\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("workspace clean"), "stdout: {stdout}");

    let (code, stdout, _) = run_lint(&["--root", &root_arg, "--json"]);
    assert_eq!(code, Some(0));
    assert_eq!(stdout.trim(), "[]");
}

#[test]
fn cli_usage_errors_exit_two() {
    let (code, _, stderr) = run_lint(&["--root"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--root requires a path"));

    let (code, _, stderr) = run_lint(&["--frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown argument"));

    // A root missing one of the five linted crates is a walk error, not
    // a clean pass: silence must never come from looking nowhere.
    let (code, _, stderr) = run_lint(&["--root", "/nonexistent-cube-root"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("walking"), "stderr: {stderr}");

    let (code, stdout, _) = run_lint(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage"));
}
