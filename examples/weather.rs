//! The paper's weather scenario (§1.1, §2, §3.5): histograms over
//! computed categories, cube with GROUPING(), decorations, and a
//! calendar-hierarchy rollup.
//!
//! Run with `cargo run --example weather`.

use datacube::hierarchy::calendar;
use datacube::{AggSpec, CubeQuery};
use dc_aggregate::builtin;
use dc_relation::{DataType, Value};
use dc_sql::scalar::ScalarFn;
use dc_sql::Engine;
use dc_warehouse::weather::{nation_of, weather_table, WeatherParams};

fn main() {
    let weather = weather_table(WeatherParams {
        rows: 4_000,
        days: 365,
        ..Default::default()
    });
    println!("generated {} weather observations", weather.len());

    let mut engine = Engine::new();
    engine.register_table("Weather", weather.clone()).unwrap();
    engine
        .register_scalar(ScalarFn::new("NATION", 2, DataType::Str, |args| {
            match (args[0].as_f64(), args[1].as_f64()) {
                (Some(lat), Some(lon)) => nation_of(lat, lon).map_or(Value::Null, Value::str),
                _ => Value::Null,
            }
        }))
        .unwrap();

    // §2's histogram query: grouping over computed categories.
    let daily = engine
        .execute(
            "SELECT day, nation, MAX(temp)
             FROM Weather
             GROUP BY DAY(time) AS day, NATION(latitude, longitude) AS nation
             ORDER BY 1, 2 LIMIT 10",
        )
        .unwrap();
    println!("\ndaily maximum temperature by nation (first 10 rows):\n{daily}");

    // The cube version with GROUPING() — §3 + §3.4.
    let cube = engine
        .execute(
            "SELECT nation, MONTH(time) AS month, AVG(temp) AS avg_temp,
                    GROUPING(nation) AS g_nation
             FROM Weather
             GROUP BY CUBE NATION(latitude, longitude) AS nation, MONTH(time) AS month
             HAVING COUNT(*) > 5
             ORDER BY 1, 2 LIMIT 15",
        )
        .unwrap();
    println!("monthly temperature cube (first 15 rows):\n{cube}");

    // Percentile question from §1.2 (Red Brick N_tile): the middle 10%.
    let temps = weather.column_values("temp").unwrap();
    let tiles = dc_aggregate::ordered::n_tile(&temps, 10).unwrap();
    let mid: Vec<f64> = temps
        .iter()
        .zip(tiles.iter())
        .filter(|(_, t)| **t == Value::Int(5))
        .map(|(v, _)| v.as_f64().unwrap())
        .collect();
    let (lo, hi) = mid
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    println!(
        "middle 10% of temperatures spans {lo:.1}..{hi:.1} °C ({} readings)",
        mid.len()
    );

    // Calendar-hierarchy rollup (§3.6): year → quarter → month, computed
    // straight from the timestamp — a cube on these would be meaningless,
    // the ROLLUP is what the paper prescribes.
    let cal = calendar();
    let dims = cal
        .rollup_dimensions(&weather, "time", &["year", "quarter", "month"])
        .unwrap();
    let rollup = CubeQuery::new()
        .dimensions(dims)
        .aggregate(AggSpec::new(builtin("AVG").unwrap(), "temp").with_name("avg_temp"))
        .rollup(&weather)
        .unwrap();
    println!(
        "calendar rollup: {} rows (12 months + 4 quarters + 1 year + grand total)",
        rollup.len()
    );
    let quarters = rollup.filter(|r| !r[1].is_all() && r[2].is_all());
    println!("{quarters}");
}
