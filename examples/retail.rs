//! The Figure 6 retail snowflake: star queries, the §3.1 compound
//! GROUP BY ⊗ ROLLUP ⊗ CUBE, and report rendering (pivot / cross tab).
//!
//! Run with `cargo run --example retail`.

use datacube::pivot::{cross_tab, pivot_table};
use datacube::{AggSpec, CompoundSpec, CubeQuery, Dimension};
use dc_aggregate::builtin;
use dc_relation::{DataType, Row, Value};
use dc_sql::Engine;
use dc_warehouse::retail::{RetailParams, RetailWarehouse};

fn main() {
    let warehouse = RetailWarehouse::generate(RetailParams {
        sales: 20_000,
        ..Default::default()
    });
    println!(
        "snowflake: fact {} rows; office {}, product {}, customer {} dimension rows",
        warehouse.fact.len(),
        warehouse.office.len(),
        warehouse.product.len(),
        warehouse.customer.len()
    );

    let mut engine = Engine::new();
    warehouse.register(&mut engine).unwrap();

    // A star query: join the fact to a dimension, then roll up its
    // granularity hierarchy.
    let by_region = engine
        .execute(
            "SELECT geography, region, SUM(units) AS units
             FROM sales_fact JOIN office USING (office_id)
             GROUP BY ROLLUP geography, region",
        )
        .unwrap();
    println!("\nunits by geography, region (star query + rollup):\n{by_region}");

    // Figure 5's compound aggregation over the denormalized table.
    let wide = warehouse.denormalize();
    let spec = CompoundSpec::new()
        .group_by(vec![Dimension::column("manufacturer")])
        .rollup(vec![Dimension::computed(
            "year",
            DataType::Int,
            |r: &Row| {
                r[8].as_date()
                    .map_or(Value::Null, |d| Value::Int(i64::from(d.year())))
            },
        )])
        .cube(vec![
            Dimension::column("category"),
            Dimension::column("segment"),
        ]);
    let revenue = CubeQuery::new()
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "price").with_name("revenue"))
        .compound(&wide, &spec)
        .unwrap();
    println!(
        "compound GROUP BY manufacturer ROLLUP year CUBE category, segment: {} rows",
        revenue.len()
    );

    // Reports from the cube relation: the cross tab of Table 6 and the
    // pivot of Table 4, over manufacturer × segment.
    let cube = CubeQuery::new()
        .dimensions(vec![
            Dimension::column("manufacturer"),
            Dimension::column("category"),
            Dimension::column("segment"),
        ])
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
        .cube(&wide)
        .unwrap();
    let xt = cross_tab(&cube, "manufacturer", "segment", "units").unwrap();
    println!("cross tab — units by manufacturer × segment:\n{xt}");

    let pv = pivot_table(&cube, "manufacturer", "category", "segment", "units").unwrap();
    println!(
        "pivot — category × segment columns ({} columns, the explosion §2 warns about)",
        pv.schema().len()
    );

    // Percent-of-total through SQL (§4).
    let share = engine
        .execute(
            "SELECT manufacturer, SUM(price) AS revenue,
                    SUM(price) / (SELECT SUM(price) FROM sales_wide) AS share
             FROM sales_wide GROUP BY manufacturer ORDER BY revenue DESC",
        )
        .unwrap();
    println!("revenue share by manufacturer:\n{share}");
}
