//! Quickstart: build a sales table, CUBE it, address cells, and define a
//! user aggregate — the paper's core ideas in ~80 lines.
//!
//! Run with `cargo run --example quickstart`.

use datacube::addressing::CubeView;
use datacube::{AggSpec, Algorithm, CubeQuery, Dimension};
use dc_aggregate::{builtin, AggKind, UdaBuilder};
use dc_relation::{row, DataType, Schema, Table, Value};

fn main() {
    // 1. A base relation: car sales by model, year, color.
    let schema = Schema::from_pairs(&[
        ("model", DataType::Str),
        ("year", DataType::Int),
        ("color", DataType::Str),
        ("units", DataType::Int),
    ]);
    let mut sales = Table::empty(schema);
    for (m, y, c, u) in [
        ("Chevy", 1994, "black", 50),
        ("Chevy", 1994, "white", 40),
        ("Chevy", 1995, "black", 85),
        ("Chevy", 1995, "white", 115),
        ("Ford", 1994, "black", 50),
        ("Ford", 1994, "white", 10),
        ("Ford", 1995, "black", 85),
        ("Ford", 1995, "white", 75),
    ] {
        sales.push(row![m, y, c, u]).unwrap();
    }

    // 2. The CUBE operator: every GROUP BY in the power set, one relation.
    let cube = CubeQuery::new()
        .dimensions(vec![
            Dimension::column("model"),
            Dimension::column("year"),
            Dimension::column("color"),
        ])
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
        .algorithm(Algorithm::Auto) // cascades from the core (§5)
        .cube(&sales)
        .unwrap();
    println!("The data cube is a relation ({} rows):\n{cube}", cube.len());

    // 3. Address it like the paper's cube.v(i, j) (§4).
    let view = CubeView::new(cube, 3, "units").unwrap();
    let chevy_total = view.v(&[Value::str("Chevy"), Value::All, Value::All]);
    println!("Chevy total (Chevy, ALL, ALL) = {chevy_total}");
    println!(
        "Chevy share of all sales       = {:.1}%",
        view.percent_of_total(&[Value::str("Chevy"), Value::All, Value::All])
            .as_f64()
            .unwrap()
            * 100.0
    );
    println!(
        "ALL(model) stands for the set  = {:?}",
        view.all_set(0)
            .unwrap()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    // 4. A user-defined aggregate with the Init/Iter/Final/Iter_super
    //    protocol (§1.2 + §5): sales-weighted "white share".
    let white_share = UdaBuilder::new("WHITE_SHARE", AggKind::Algebraic, || (0i64, 0i64))
        .iter(|_s, _v| { /* driven through merge in this demo */ })
        .state(|s| vec![Value::Int(s.0), Value::Int(s.1)])
        .merge(|s, st| {
            s.0 += st[0].as_i64().unwrap_or(0);
            s.1 += st[1].as_i64().unwrap_or(0);
        })
        .finalize(|s| {
            if s.1 == 0 {
                Value::Null
            } else {
                Value::Float(s.0 as f64 / s.1 as f64)
            }
        })
        .build()
        .unwrap();
    let mut acc = white_share.init();
    for r in sales.rows() {
        let white = if r[2] == Value::str("white") {
            r[3].as_i64().unwrap()
        } else {
            0
        };
        acc.merge(&[Value::Int(white), Value::Int(r[3].as_i64().unwrap())]);
    }
    println!(
        "user aggregate WHITE_SHARE(all sales) = {:.3}",
        acc.final_value().as_f64().unwrap()
    );

    // 5. The same cube through SQL.
    let mut engine = dc_sql::Engine::new();
    engine.register_table("Sales", sales).unwrap();
    let top = engine
        .execute(
            "SELECT model, SUM(units) AS total FROM Sales
             GROUP BY CUBE model ORDER BY total DESC",
        )
        .unwrap();
    println!("SQL: totals by model (cube):\n{top}");
}
