//! Partial cube materialization — §6's pointer to Harinarayan, Rajaraman
//! and Ullman, exercised end to end: size estimation, greedy view
//! selection, and answering the whole lattice from a handful of views.
//!
//! Run with `cargo run --example partial_cube`.

use datacube::{cube_sets, greedy_select, GroupingSet, PartialCube, SizeModel};
use datacube::{AggSpec, Dimension};
use dc_aggregate::builtin;
use dc_warehouse::sales::{synthetic_sales, SalesParams};

fn main() {
    // A 3D workload with skewed cardinalities: many models, few years.
    let table = synthetic_sales(SalesParams {
        rows: 50_000,
        models: 200,
        years: 5,
        colors: 20,
        seed: 2,
    });
    let dims = vec![
        Dimension::column("model"),
        Dimension::column("year"),
        Dimension::column("color"),
    ];
    let sum = AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units");

    let model = SizeModel::independent(&[200, 5, 20], table.len() as u64).unwrap();
    println!("estimated view sizes (independence model):");
    for set in cube_sets(3).unwrap() {
        println!("  {set:<10} ~{} rows", model.size(set));
    }

    // HRU greedy: how much does each extra materialized view buy?
    println!("\nHRU greedy selection (cost = rows read to answer all 8 sets):");
    for k in 0..=7 {
        let (selection, cost) = greedy_select(3, k, &model).unwrap();
        let picks: Vec<String> = selection.iter().skip(1).map(|s| s.to_string()).collect();
        println!(
            "  k={k}: cost {cost:>8}   picks beyond core: [{}]",
            picks.join(", ")
        );
    }

    // Materialize the k=2 selection and answer every grouping set.
    let (selection, _) = greedy_select(3, 2, &model).unwrap();
    let mut pc = PartialCube::materialize(&table, dims, vec![sum], &selection).unwrap();
    println!(
        "\nmaterialized sets: {:?}",
        pc.materialized()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    for set in cube_sets(3).unwrap() {
        let answer = pc.query(set).unwrap();
        println!("  answered {set:<10} -> {} rows", answer.len());
    }
    println!(
        "rows re-scanned for the unmaterialized sets: {}",
        pc.stats().rows_scanned
    );

    // The grand total, straight off the partial cube.
    let grand = pc.query(GroupingSet::EMPTY).unwrap();
    println!("grand total row: {}", grand.rows()[0]);
}
