//! A tiny SQL shell over the paper's datasets.
//!
//! Run with `cargo run --example sql_repl`, then type queries such as
//!
//! ```sql
//! SELECT model, year, SUM(units) FROM sales GROUP BY CUBE model, year;
//! SELECT day, nation, MAX(temp) FROM weather
//!     GROUP BY DAY(time) AS day, NATION(latitude, longitude) AS nation;
//! SELECT region, SUM(units) FROM sales_wide GROUP BY ROLLUP region;
//! ```
//!
//! `\tables` lists tables; `\q` quits. Also accepts a single query as a
//! command-line argument for non-interactive use.

use std::io::{BufRead, Write};

use dc_relation::{DataType, Value};
use dc_sql::scalar::ScalarFn;
use dc_sql::Engine;
use dc_warehouse::retail::{RetailParams, RetailWarehouse};
use dc_warehouse::sales::table4_sales;
use dc_warehouse::weather::{nation_of, weather_table, WeatherParams};

fn build_engine() -> Engine {
    let mut engine = Engine::new();
    engine.register_table("sales", table4_sales()).unwrap();
    engine
        .register_table(
            "weather",
            weather_table(WeatherParams {
                rows: 2_000,
                ..Default::default()
            }),
        )
        .unwrap();
    let warehouse = RetailWarehouse::generate(RetailParams {
        sales: 5_000,
        ..Default::default()
    });
    warehouse.register(&mut engine).unwrap();
    engine
        .register_scalar(ScalarFn::new("NATION", 2, DataType::Str, |args| {
            match (args[0].as_f64(), args[1].as_f64()) {
                (Some(lat), Some(lon)) => nation_of(lat, lon).map_or(Value::Null, Value::str),
                _ => Value::Null,
            }
        }))
        .unwrap();
    engine
}

const TABLES: &[&str] = &[
    "sales",
    "weather",
    "sales_fact",
    "office",
    "product",
    "customer",
    "sales_wide",
];

fn main() {
    let engine = build_engine();

    // Non-interactive: `cargo run --example sql_repl -- "SELECT ..."`.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        run(&engine, &args.join(" "));
        return;
    }

    println!("data cube SQL shell — tables: {}", TABLES.join(", "));
    println!(
        "\\tables lists tables, \\q quits, end queries with ; — EXPLAIN SELECT ... shows the plan"
    );
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("cube> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        match trimmed {
            "\\q" | "exit" | "quit" => break,
            "\\tables" => {
                for t in TABLES {
                    let n = engine.table(t).map(|t| t.len()).unwrap_or(0);
                    println!("  {t} ({n} rows)");
                }
                continue;
            }
            _ => {}
        }
        buffer.push_str(&line);
        if buffer.trim_end().ends_with(';') {
            let sql = std::mem::take(&mut buffer);
            run(&engine, &sql);
        }
    }
}

fn run(engine: &Engine, sql: &str) {
    match engine.execute(sql) {
        Ok(table) => print!("{table}"),
        Err(e) => eprintln!("error: {e}"),
    }
}
