//! §6's maintained cube: triggers keep a materialized cube fresh under
//! INSERT / DELETE / UPDATE, and MAX shows its delete-holistic face.
//!
//! Run with `cargo run --example maintenance`.

use datacube::maintain::MaterializedCube;
use datacube::{AggSpec, Dimension};
use dc_aggregate::builtin;
use dc_relation::{row, DataType, Schema, Table, Value};

fn main() {
    let schema = Schema::from_pairs(&[
        ("model", DataType::Str),
        ("year", DataType::Int),
        ("units", DataType::Int),
    ]);
    let base = Table::new(
        schema,
        vec![
            row!["Chevy", 1994, 50],
            row!["Chevy", 1995, 85],
            row!["Ford", 1994, 60],
            row!["Ford", 1995, 160],
        ],
    )
    .unwrap();

    let dims = vec![Dimension::column("model"), Dimension::column("year")];
    let cube = MaterializedCube::cube(
        &base,
        dims,
        vec![
            AggSpec::new(builtin("SUM").unwrap(), "units").with_name("sum_units"),
            AggSpec::new(builtin("MAX").unwrap(), "units").with_name("max_units"),
        ],
    )
    .unwrap();
    println!(
        "materialized cube ({} cells):\n{}",
        cube.cell_count(),
        cube.to_table().unwrap()
    );

    // INSERT: visit the record's 2^N cells.
    println!("-- INSERT (Dodge, 1995, 30)");
    cube.insert(row!["Dodge", 1995, 30]).unwrap();
    println!(
        "grand total now {:?}; stats: {:?}",
        cube.cell(&[Value::All, Value::All]).unwrap(),
        cube.stats()
    );

    // DELETE of a loser: cheap for both SUM and MAX.
    println!("-- DELETE (Chevy, 1994, 50) — not a champion anywhere above itself");
    cube.delete(&row!["Chevy", 1994, 50]).unwrap();
    println!("stats after cheap delete: {:?}", cube.stats());

    // DELETE of the champion: SUM retracts in place, MAX forces
    // recomputation of every cell the champion dominated (§6: "max is ...
    // holistic for DELETE").
    println!("-- DELETE (Ford, 1995, 160) — the global maximum");
    cube.delete(&row!["Ford", 1995, 160]).unwrap();
    let s = cube.stats();
    println!(
        "stats after champion delete: cells_recomputed={}, rows_rescanned={}",
        s.cells_recomputed, s.rows_rescanned
    );
    println!(
        "new global (sum, max) = {:?}",
        cube.cell(&[Value::All, Value::All]).unwrap()
    );

    // UPDATE = delete + insert.
    println!("-- UPDATE (Dodge, 1995, 30) -> (Dodge, 1995, 45)");
    cube.update(&row!["Dodge", 1995, 30], row!["Dodge", 1995, 45])
        .unwrap();
    println!("final cube:\n{}", cube.to_table().unwrap());
}
